//! The TCP control block: one connection's full state machine.
//!
//! Implements RFC 793 connection states with pluggable congestion
//! control ([`crate::congestion`]; Reno by default), optional RFC 2018
//! SACK recovery, RFC 6298 retransmission timing (Linux bounds), delayed
//! ACKs, zero window probing, and restart-after-idle — plus the two
//! ST-TCP extensions the paper adds on the server side:
//!
//! * **shadow semantics** (backup): the ISN is resynchronized from the
//!   client's third-handshake ACK (§4.1), and ACKs ahead of `snd_nxt`
//!   (acknowledging bytes the *primary* sent that this shadow has not
//!   generated yet) are tolerated and remembered;
//! * **retention** (primary): bytes read by the application are retained
//!   in a second receive buffer until the backup acknowledges them over
//!   the side channel (§4.2), see [`crate::recv_buf::RecvBuffer`].
//!
//! The TCB is sans-io: segments go in via [`Tcb::on_segment`], segments
//! come out of [`Tcb::poll`], and time only moves when the caller passes
//! it in.

use crate::config::{Quad, TcpConfig};
use crate::congestion::{idle_restart_due, CongSnapshot, CongestionController, CongestionCtrl};
use crate::recv_buf::RecvBuffer;
use crate::rto::RtoEstimator;
use crate::sack::SackScoreboard;
use crate::send_buf::SendBuffer;
use crate::seq::SeqNum;
use bytes::Bytes;
use netsim::{SimDuration, SimTime};
use obs::{Counter, Gauge, SharedRecorder, TraceEvent};
use std::borrow::Cow;
use wire::{TcpFlags, TcpOption, TcpSegment};

/// RFC 793 connection states (LISTEN lives in the stack's listener
/// table, not here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpState {
    /// SYN sent, waiting for SYN/ACK.
    SynSent,
    /// SYN received, SYN/ACK sent, waiting for ACK.
    SynRcvd,
    /// Data flows.
    Established,
    /// We closed first; FIN sent, not yet acknowledged.
    FinWait1,
    /// Our FIN acknowledged; waiting for the peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Both closed simultaneously; waiting for our FIN's ACK.
    Closing,
    /// Peer closed, then we closed; waiting for our FIN's ACK.
    LastAck,
    /// Connection done; lingering to absorb stray segments.
    TimeWait,
    /// Fully closed (or aborted).
    Closed,
}

impl TcpState {
    /// True once the handshake has completed (data may have flowed).
    pub fn is_synchronized(self) -> bool {
        !matches!(self, TcpState::SynSent | TcpState::SynRcvd)
    }

    /// The state's canonical name, as it appears in trace exports.
    pub const fn name(self) -> &'static str {
        match self {
            TcpState::SynSent => "SynSent",
            TcpState::SynRcvd => "SynRcvd",
            TcpState::Established => "Established",
            TcpState::FinWait1 => "FinWait1",
            TcpState::FinWait2 => "FinWait2",
            TcpState::CloseWait => "CloseWait",
            TcpState::Closing => "Closing",
            TcpState::LastAck => "LastAck",
            TcpState::TimeWait => "TimeWait",
            TcpState::Closed => "Closed",
        }
    }
}

/// Counters exposed for tests and the benchmark harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcbStats {
    /// Segments processed by [`Tcb::on_segment`].
    pub segs_in: u64,
    /// Segments staged for output.
    pub segs_out: u64,
    /// Payload bytes accepted in order.
    pub bytes_in: u64,
    /// Payload bytes transmitted (first transmissions only).
    pub bytes_out: u64,
    /// RTO-driven retransmissions.
    pub rto_retransmits: u64,
    /// Fast retransmissions (3 duplicate ACKs).
    pub fast_retransmits: u64,
    /// RTT samples fed to the estimator.
    pub rtt_samples: u64,
    /// Shadow-mode ISN resynchronizations performed (0 or 1).
    pub isn_resyncs: u64,
    /// Zero-window probes sent.
    pub probes: u64,
}

/// One TCP connection.
#[derive(Debug, Clone)]
pub struct Tcb {
    cfg: TcpConfig,
    quad: Quad,
    state: TcpState,

    // Send side.
    iss: SeqNum,
    snd_buf: SendBuffer,
    snd_una: SeqNum,
    snd_nxt: SeqNum,
    /// Highest sequence number ever sent (`snd_nxt` rolls back to
    /// `snd_una` on an RTO — classic go-back-N recovery — while this
    /// high-water mark keeps Karn's rule and FIN accounting straight).
    snd_max: SeqNum,
    snd_wnd: u32,
    fin_queued: bool,
    fin_sent: bool,
    syn_attempts: u32,

    // Receive side.
    irs: SeqNum,
    remote_synced: bool,
    rcv_buf: RecvBuffer,
    peer_fin: Option<SeqNum>,
    fin_consumed: bool,
    peer_mss: u32,
    /// Shift applied to *incoming* window fields (the peer's announced
    /// scale; nonzero only when both sides offered RFC 1323 scaling).
    snd_wscale: u8,
    /// Shift applied to *outgoing* window fields (our announced scale).
    rcv_wscale: u8,
    /// Peer offered window scaling in its SYN.
    peer_offered_wscale: Option<u8>,

    // Timing.
    rto: RtoEstimator,
    cong: CongestionCtrl,
    /// Last congestion-controller phase traced (transition detector).
    cc_phase: &'static str,
    /// Pacing gate for rate-based controllers: no data transmission
    /// before this instant. `None` whenever the controller reports no
    /// pacing rate (Reno/CUBIC), keeping the default path untouched.
    pacing_gate: Option<SimTime>,
    /// SACK in effect: our config enables it AND the peer's SYN offered
    /// `SackPermitted`.
    sack_ok: bool,
    /// Sender scoreboard of peer-reported SACK ranges.
    sack_board: SackScoreboard,
    rtx_deadline: Option<SimTime>,
    delack_deadline: Option<SimTime>,
    probe_deadline: Option<SimTime>,
    probe_backoff: u32,
    time_wait_deadline: Option<SimTime>,
    rtt_probe: Option<(SeqNum, SimTime)>,
    last_send: SimTime,
    bytes_since_ack: u32,
    ack_pending: bool,

    // Shadow mode.
    shadow_peer_ack: SeqNum,
    /// Shadow mode: the ISN was fixed authoritatively from the tapped
    /// primary SYN/ACK, so the client-ACK fallback must not touch it.
    isn_fixed: bool,

    /// Counters.
    pub stats: TcbStats,
    recorder: SharedRecorder,
    out: Vec<StagedSeg>,
}

/// One staged outbound segment, as produced by [`Tcb::poll_stage`].
///
/// Data segments are staged as a *plan* — sequence range plus the header
/// fields frozen at stage time — rather than a materialized
/// [`TcpSegment`], so the stack can write the payload straight from the
/// send buffer's ring ([`Tcb::payload_slices`]) into the frame builder
/// with a single memcpy and zero allocations.
#[derive(Debug, Clone)]
pub enum StagedSeg {
    /// A fully materialized control segment (SYN, pure ACK, FIN, RST,
    /// window probe — never carries payload from the send buffer).
    Ctl(TcpSegment),
    /// A data segment whose payload still lives in the send buffer at
    /// `[seq, seq + len)`. Header fields were frozen at stage time so a
    /// later state change inside the same poll cannot alter the wire
    /// bytes.
    Data {
        /// First payload byte's sequence number.
        seq: SeqNum,
        /// Payload length (bounded by the MSS, so `u16` suffices).
        len: u16,
        /// Flags (always includes ACK; may add PSH/FIN).
        flags: TcpFlags,
        /// Acknowledgment number frozen at stage time.
        ack: u32,
        /// Window field frozen at stage time.
        window: u16,
    },
}

const SYN_MAX_ATTEMPTS: u32 = 6;

impl Tcb {
    /// Opens a connection actively: stages a SYN and enters `SynSent`.
    pub fn connect(now: SimTime, quad: Quad, iss: SeqNum, cfg: TcpConfig) -> Self {
        let mut tcb = Self::new(now, quad, iss, cfg, TcpState::SynSent);
        tcb.stage_syn(now, false);
        tcb.rtx_deadline = Some(now + tcb.rto.rto());
        tcb
    }

    /// Opens a connection passively from a received SYN: stages a
    /// SYN/ACK and enters `SynRcvd`.
    pub fn accept(now: SimTime, quad: Quad, iss: SeqNum, syn: &TcpSegment, cfg: TcpConfig) -> Self {
        let mut tcb = Self::new(now, quad, iss, cfg, TcpState::SynRcvd);
        tcb.irs = SeqNum(syn.seq);
        tcb.remote_synced = true;
        tcb.rcv_buf = RecvBuffer::new(tcb.irs.add(1), tcb.cfg.recv_buf, tcb.cfg.retention_buf);
        tcb.peer_mss = u32::from(syn.mss().unwrap_or(536));
        tcb.negotiate_wscale(syn);
        tcb.stage_syn(now, true);
        tcb.rtx_deadline = Some(now + tcb.rto.rto());
        tcb.rtt_probe = Some((tcb.iss.add(1), now));
        tcb
    }

    fn new(now: SimTime, quad: Quad, iss: SeqNum, cfg: TcpConfig, state: TcpState) -> Self {
        let rto = RtoEstimator::with_bounds(cfg.rto_min, cfg.rto_max);
        let cong = CongestionCtrl::new(cfg.congestion, u32::from(cfg.mss));
        let cc_phase = cong.phase();
        Tcb {
            snd_buf: SendBuffer::new(iss.add(1), cfg.send_buf),
            snd_una: iss,
            snd_nxt: iss.add(1),
            snd_max: iss.add(1),
            snd_wnd: 0,
            fin_queued: false,
            fin_sent: false,
            syn_attempts: 1,
            irs: SeqNum(0),
            remote_synced: false,
            rcv_buf: RecvBuffer::new(SeqNum(0), cfg.recv_buf, cfg.retention_buf),
            peer_fin: None,
            fin_consumed: false,
            peer_mss: u32::from(cfg.mss),
            snd_wscale: 0,
            rcv_wscale: 0,
            peer_offered_wscale: None,
            rto,
            cong,
            cc_phase,
            pacing_gate: None,
            sack_ok: false,
            sack_board: SackScoreboard::new(),
            rtx_deadline: None,
            delack_deadline: None,
            probe_deadline: None,
            probe_backoff: 0,
            time_wait_deadline: None,
            rtt_probe: Some((iss.add(1), now)),
            last_send: now,
            bytes_since_ack: 0,
            ack_pending: false,
            shadow_peer_ack: iss,
            isn_fixed: false,
            stats: TcbStats::default(),
            recorder: obs::nop(),
            out: Vec::new(),
            quad,
            state,
            iss,
            cfg,
        }
    }

    /// Installs an observability recorder (no-op by default).
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = recorder;
    }

    /// Moves the state machine, tracing every real transition (the
    /// single funnel for all post-construction state changes).
    fn set_state(&mut self, now: SimTime, to: TcpState) {
        if self.state == to {
            return;
        }
        let from = self.state;
        self.state = to;
        self.recorder.trace(
            now.as_nanos(),
            &TraceEvent::TcpState {
                conn: self.quad.trace_conn(),
                from: Cow::Borrowed(from.name()),
                to: Cow::Borrowed(to.name()),
            },
        );
    }

    // ------------------------------------------------------- accessors

    /// The connection's four-tuple.
    pub fn quad(&self) -> Quad {
        self.quad
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Our initial sequence number (after any shadow resync).
    pub fn iss(&self) -> SeqNum {
        self.iss
    }

    /// The peer's initial sequence number.
    pub fn irs(&self) -> SeqNum {
        self.irs
    }

    /// First unacknowledged sequence number.
    pub fn snd_una(&self) -> SeqNum {
        self.snd_una
    }

    /// Next sequence number to send.
    pub fn snd_nxt(&self) -> SeqNum {
        self.snd_nxt
    }

    /// The peer's advertised window.
    pub fn snd_wnd(&self) -> u32 {
        self.snd_wnd
    }

    /// `NextByteExpected` (payload only; the consumed FIN is accounted
    /// separately in outgoing ACK numbers).
    pub fn rcv_nxt(&self) -> SeqNum {
        self.rcv_buf.rcv_nxt()
    }

    /// Effective receive-next including a consumed FIN — the number our
    /// ACKs carry.
    pub fn ack_seq(&self) -> SeqNum {
        self.rcv_buf.rcv_nxt().add(u32::from(self.fin_consumed))
    }

    /// Bytes the application can read right now.
    pub fn readable(&self) -> usize {
        self.rcv_buf.readable()
    }

    /// Free space in the send buffer.
    pub fn writable(&self) -> usize {
        self.snd_buf.free_space()
    }

    /// Bytes retained for the backup (primary retention mode).
    pub fn retained(&self) -> usize {
        self.rcv_buf.retained()
    }

    /// Current advertised window.
    pub fn window(&self) -> usize {
        self.rcv_buf.window()
    }

    /// Bytes in flight.
    pub fn flight(&self) -> u32 {
        self.snd_nxt.distance(self.snd_una).max(0) as u32
    }

    /// Highest cumulative ACK seen from the peer (shadow mode records
    /// this even beyond `snd_nxt`).
    pub fn peer_ack_high_water(&self) -> SeqNum {
        self.shadow_peer_ack
    }

    /// True when the peer's FIN has been consumed and all data read.
    pub fn peer_closed(&self) -> bool {
        self.fin_consumed && self.rcv_buf.readable() == 0
    }

    /// Congestion state (read-only, for tests/benches). Import
    /// [`CongestionController`] for the accessor methods.
    pub fn congestion(&self) -> &CongestionCtrl {
        &self.cong
    }

    /// Exports the controller state worth mirroring to the backup over
    /// the side channel (primary side of the shadow path).
    pub fn export_congestion(&self) -> CongSnapshot {
        self.cong.export()
    }

    /// Adopts mirrored controller state from the primary, so a promoted
    /// shadow resumes near the primary's operating point instead of from
    /// the initial window (backup side of the shadow path).
    pub fn import_congestion(&mut self, snap: CongSnapshot) {
        self.cong.import(snap);
    }

    /// True when SACK was negotiated on this connection.
    pub fn sack_negotiated(&self) -> bool {
        self.sack_ok
    }

    /// The sender's SACK scoreboard (read-only, for tests).
    pub fn sack_scoreboard(&self) -> &SackScoreboard {
        &self.sack_board
    }

    /// RTO estimator (read-only, for tests/benches).
    pub fn rto_estimator(&self) -> &RtoEstimator {
        &self.rto
    }

    // ---------------------------------------------------- application

    /// Queues application data; returns bytes accepted.
    pub fn write(&mut self, data: &[u8]) -> usize {
        if !matches!(
            self.state,
            TcpState::SynSent | TcpState::SynRcvd | TcpState::Established | TcpState::CloseWait
        ) {
            return 0;
        }
        if self.fin_queued {
            return 0;
        }
        let n = self.snd_buf.write(data);
        if n > 0 {
            self.recorder.gauge_max(Gauge::SendBufHighWater, self.snd_buf.len() as u64);
        }
        n
    }

    /// Reads received data; returns bytes copied. Opening the window
    /// from (near) zero stages a window-update ACK.
    pub fn read(&mut self, buf: &mut [u8]) -> usize {
        let before = self.rcv_buf.window();
        let n = self.rcv_buf.read(buf);
        let after = self.rcv_buf.window();
        if n > 0 && before < usize::from(self.cfg.mss) && after >= usize::from(self.cfg.mss) {
            self.ack_now();
        }
        n
    }

    /// Begins an orderly close: a FIN is sent once buffered data drains.
    pub fn close(&mut self, now: SimTime) {
        match self.state {
            TcpState::SynSent => self.set_state(now, TcpState::Closed),
            TcpState::Established | TcpState::SynRcvd | TcpState::CloseWait => {
                self.fin_queued = true;
            }
            _ => {}
        }
    }

    /// Aborts: stages a RST and drops to `Closed`.
    pub fn abort(&mut self, now: SimTime) {
        if self.state.is_synchronized() && self.state != TcpState::Closed {
            let mut seg = self.make_seg(TcpFlags::RST | TcpFlags::ACK, self.snd_nxt, Bytes::new());
            seg.ack = self.ack_seq().raw();
            self.stage(seg);
        }
        self.set_state(now, TcpState::Closed);
    }

    // ------------------------------------------------- segment intake

    /// Processes one incoming segment.
    pub fn on_segment(&mut self, now: SimTime, seg: &TcpSegment) {
        self.stats.segs_in += 1;
        match self.state {
            TcpState::Closed => {}
            TcpState::SynSent => self.on_segment_syn_sent(now, seg),
            TcpState::SynRcvd => self.on_segment_syn_rcvd(now, seg),
            _ => self.on_segment_synchronized(now, seg),
        }
    }

    fn on_segment_syn_sent(&mut self, now: SimTime, seg: &TcpSegment) {
        let flags = seg.flags;
        if flags.contains(TcpFlags::RST) {
            if flags.contains(TcpFlags::ACK) && SeqNum(seg.ack) == self.iss.add(1) {
                self.set_state(now, TcpState::Closed);
            }
            return;
        }
        if flags.contains(TcpFlags::SYN) && flags.contains(TcpFlags::ACK) {
            if SeqNum(seg.ack) != self.iss.add(1) {
                return; // bogus handshake
            }
            self.irs = SeqNum(seg.seq);
            self.remote_synced = true;
            self.rcv_buf =
                RecvBuffer::new(self.irs.add(1), self.cfg.recv_buf, self.cfg.retention_buf);
            self.peer_mss = u32::from(seg.mss().unwrap_or(536));
            self.snd_una = self.iss.add(1);
            self.negotiate_wscale(seg);
            self.snd_wnd = self.peer_window(seg);
            self.set_state(now, TcpState::Established);
            self.rtx_deadline = None;
            self.take_rtt_sample(now, self.snd_una);
            self.ack_now();
        }
    }

    fn on_segment_syn_rcvd(&mut self, now: SimTime, seg: &TcpSegment) {
        let flags = seg.flags;
        if flags.contains(TcpFlags::RST) {
            self.set_state(now, TcpState::Closed);
            return;
        }
        if flags.contains(TcpFlags::SYN) && !flags.contains(TcpFlags::ACK) {
            // Duplicate SYN: retransmit the SYN/ACK.
            self.stage_syn(now, true);
            return;
        }
        if !flags.contains(TcpFlags::ACK) {
            return;
        }
        let ack = SeqNum(seg.ack);
        if self.cfg.shadow {
            if self.isn_fixed {
                // The ISN already matches the primary's (learned from
                // its tapped SYN/ACK). This client ACK may cover data
                // the primary sent that we have not generated yet —
                // standard shadow high-water handling.
                self.snd_una = self.iss.add(1);
                self.snd_nxt = self.iss.add(1);
                self.snd_max = self.snd_max.max(self.snd_nxt);
                self.shadow_peer_ack = self.shadow_peer_ack.max(ack);
            } else {
                // ST-TCP §4.1 step 3: "The client's ACK segment,
                // completing the three way handshake, is used by the
                // backup to modify its own initial sequence number …
                // After this point, the backup's sequence numbers match
                // those of the primary." Fallback path: correct only
                // when this really is the handshake-completing ACK —
                // the tapped primary SYN/ACK (shadow_resync_iss) is the
                // authoritative source when available.
                let primary_iss = ack.sub(1);
                if primary_iss != self.iss {
                    self.iss = primary_iss;
                    self.snd_buf.rebase(ack);
                    self.stats.isn_resyncs += 1;
                    self.recorder.count(Counter::ShadowIsnResyncs, 1);
                }
                self.snd_nxt = ack;
                self.snd_max = ack;
                self.snd_una = ack;
                self.shadow_peer_ack = ack;
            }
            self.rtt_probe = None;
        } else {
            if ack != self.snd_nxt {
                return; // not the ACK of our SYN/ACK
            }
            self.snd_una = ack;
            self.take_rtt_sample(now, ack);
        }
        self.snd_wnd = self.peer_window(seg);
        self.set_state(now, TcpState::Established);
        self.rtx_deadline = None;
        // The handshake ACK may carry data or a FIN: fall through.
        self.on_segment_synchronized(now, seg);
    }

    fn on_segment_synchronized(&mut self, now: SimTime, seg: &TcpSegment) {
        if seg.flags.contains(TcpFlags::RST) {
            self.set_state(now, TcpState::Closed);
            return;
        }
        let seq = SeqNum(seg.seq);
        let seg_len = seg.seq_len();
        if !self.segment_acceptable(seq, seg_len) {
            self.ack_now();
            return;
        }
        if seg.flags.contains(TcpFlags::ACK) {
            self.process_ack(now, seg);
            if self.state == TcpState::Closed {
                return;
            }
        }
        if !seg.payload.is_empty() {
            self.process_payload(now, seq, &seg.payload);
        }
        if seg.flags.contains(TcpFlags::FIN) {
            let fin_seq = seq.add(seg.payload.len() as u32);
            if self.fin_consumed {
                // Retransmitted FIN: our ACK was lost, re-acknowledge.
                self.ack_now();
            } else {
                match self.peer_fin {
                    Some(existing) => debug_assert_eq!(existing, fin_seq, "peer moved its FIN"),
                    None => self.peer_fin = Some(fin_seq),
                }
            }
        }
        self.try_consume_fin(now);
    }

    fn segment_acceptable(&self, seq: SeqNum, seg_len: u32) -> bool {
        let rcv_nxt = self.ack_seq();
        let wnd = self.rcv_buf.window() as u32;
        if seg_len == 0 {
            if wnd == 0 {
                seq == rcv_nxt
            } else {
                seq.ge(rcv_nxt) && seq.lt(rcv_nxt.add(wnd)) || seq == rcv_nxt
            }
        } else {
            // Any overlap with the window (or a retransmission reaching
            // exactly up to rcv_nxt, which deserves a fresh ACK and is
            // handled by the duplicate path in RecvBuffer).
            let window_edge = rcv_nxt.add(wnd.max(1));
            seq.lt(window_edge) && seq.add(seg_len).gt(rcv_nxt)
                || seq.add(seg_len) == rcv_nxt
                || seq == rcv_nxt
        }
    }

    fn process_ack(&mut self, now: SimTime, seg: &TcpSegment) {
        // RFC 2018: record the receiver's SACK islands before acting on
        // the cumulative ACK, so a dup-ack-triggered retransmission
        // already steers around them. Blocks beyond `snd_max` (which we
        // never sent) are discarded as malformed.
        if self.sack_ok {
            for opt in &seg.options {
                if matches!(opt, wire::TcpOption::Sack { .. }) {
                    for &(lo, hi) in opt.sack_blocks() {
                        let (lo, hi) = (SeqNum::new(lo), SeqNum::new(hi));
                        if hi.le(self.snd_max) {
                            self.sack_board.insert(lo, hi);
                        }
                    }
                }
            }
        }
        let mut ack = SeqNum(seg.ack);
        if ack.gt(self.snd_max) {
            if self.cfg.shadow {
                // The client is acknowledging bytes the *primary* sent
                // that this shadow has not generated yet. Remember the
                // high-water mark; they auto-complete when our app
                // produces them (see poll()).
                self.shadow_peer_ack = self.shadow_peer_ack.max(ack);
                ack = self.snd_max;
            } else {
                self.ack_now();
                return;
            }
        }
        if self.cfg.shadow {
            self.shadow_peer_ack = self.shadow_peer_ack.max(ack);
        }
        if ack.gt(self.snd_una) {
            let flight = self.flight();
            let acked = ack.distance(self.snd_una).max(0) as u32;
            self.snd_buf.ack_to(ack);
            self.snd_una = ack;
            // An ack may cover bytes we rolled `snd_nxt` back over
            // (go-back-N): never leave snd_nxt behind snd_una.
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            self.sack_board.ack_to(ack);
            self.cong.on_new_ack(now, flight, acked, self.rto.srtt());
            self.rto.reset_backoff();
            self.take_rtt_sample(now, ack);
            self.after_una_advance(now);
            self.trace_cc(now);
        } else if ack == self.snd_una
            && seg.payload.is_empty()
            && !seg.flags.contains(TcpFlags::SYN)
            && !seg.flags.contains(TcpFlags::FIN)
            && self.flight() > 0
            && self.peer_window(seg) == self.snd_wnd
            && self.cong.on_dup_ack(self.flight())
        {
            self.stats.fast_retransmits += 1;
            self.recorder.count(Counter::TcpFastRetransmits, 1);
            self.retransmit_front(now);
            self.trace_cc(now);
        }
        // Window update (links are FIFO in the simulator, so the newest
        // segment carries the newest window).
        if ack.ge(self.snd_una) {
            let opened = self.snd_wnd == 0 && seg.window > 0;
            self.snd_wnd = self.peer_window(seg);
            if opened {
                self.probe_deadline = None;
                self.probe_backoff = 0;
            }
        }
    }

    fn after_una_advance(&mut self, now: SimTime) {
        if self.snd_una == self.snd_nxt {
            self.rtx_deadline = None;
        } else {
            self.rtx_deadline = Some(now + self.rto.rto());
        }
        if self.fin_sent && self.snd_una == self.snd_max {
            // Our FIN is acknowledged.
            let next = match self.state {
                TcpState::FinWait1 => TcpState::FinWait2,
                TcpState::Closing => {
                    self.time_wait_deadline = Some(now + self.cfg.time_wait);
                    TcpState::TimeWait
                }
                TcpState::LastAck => TcpState::Closed,
                s => s,
            };
            self.set_state(now, next);
        }
    }

    fn process_payload(&mut self, now: SimTime, seq: SeqNum, payload: &Bytes) {
        if !matches!(self.state, TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2) {
            return;
        }
        let before = self.rcv_buf.rcv_nxt();
        self.rcv_buf.insert_bytes(seq, payload.clone());
        let after = self.rcv_buf.rcv_nxt();
        let advanced = after.distance(before) as u64;
        self.stats.bytes_in += advanced;
        if advanced > 0 {
            self.recorder.gauge_max(Gauge::RecvBufHighWater, self.rcv_buf.readable() as u64);
            self.recorder.gauge_max(Gauge::RetentionHighWater, self.rcv_buf.retained() as u64);
        }
        let fully_in_order = advanced > 0 && after == seq.add(payload.len() as u32);
        if fully_in_order {
            self.bytes_since_ack += advanced as u32;
            if self.bytes_since_ack >= 2 * u32::from(self.cfg.mss) || self.cfg.delayed_ack.is_zero()
            {
                self.ack_now();
            } else if self.delack_deadline.is_none() && !self.ack_pending {
                self.delack_deadline = Some(now + self.cfg.delayed_ack);
            }
        } else {
            // Out of order, duplicate, or gap-filling: immediate ACK so
            // the sender sees duplicates / learns the new edge.
            self.ack_now();
        }
    }

    fn try_consume_fin(&mut self, now: SimTime) {
        if self.fin_consumed {
            return;
        }
        let Some(fin_seq) = self.peer_fin else {
            return;
        };
        if self.rcv_buf.rcv_nxt() == fin_seq {
            self.fin_consumed = true;
            self.ack_now();
            let next = match self.state {
                TcpState::Established => TcpState::CloseWait,
                TcpState::FinWait1 => TcpState::Closing,
                TcpState::FinWait2 => {
                    self.time_wait_deadline = Some(now + self.cfg.time_wait);
                    TcpState::TimeWait
                }
                s => s,
            };
            self.set_state(now, next);
        }
    }

    /// Records the peer's SYN options and, once both sides' offers are
    /// known, activates window scaling (RFC 1323: in effect only if both
    /// SYNs carried the option) and SACK (RFC 2018: in effect only when
    /// our config enables it and the peer's SYN offered `SackPermitted`).
    fn negotiate_wscale(&mut self, syn: &TcpSegment) {
        self.peer_offered_wscale = syn.options.iter().find_map(|o| match o {
            wire::TcpOption::WindowScale(v) => Some((*v).min(14)),
            _ => None,
        });
        if let (Some(peer), Some(ours)) = (self.peer_offered_wscale, self.cfg.window_scale) {
            self.snd_wscale = peer;
            self.rcv_wscale = ours.min(14);
        }
        if self.cfg.sack && syn.options.iter().any(|o| matches!(o, wire::TcpOption::SackPermitted))
        {
            self.sack_ok = true;
        }
    }

    /// Decodes an incoming window field (SYN segments are never scaled).
    fn peer_window(&self, seg: &TcpSegment) -> u32 {
        if seg.flags.contains(TcpFlags::SYN) {
            u32::from(seg.window)
        } else {
            u32::from(seg.window) << self.snd_wscale
        }
    }

    /// Encodes our advertised window for a non-SYN segment.
    fn own_window_field(&self) -> u16 {
        (self.rcv_buf.window() >> self.rcv_wscale).min(65535) as u16
    }

    fn take_rtt_sample(&mut self, now: SimTime, ack: SeqNum) {
        if let Some((probe_seq, sent_at)) = self.rtt_probe {
            if ack.ge(probe_seq) {
                self.rto.on_sample(now.duration_since(sent_at));
                self.stats.rtt_samples += 1;
                self.rtt_probe = None;
            }
        }
    }

    // ---------------------------------------------------- ST-TCP hooks

    /// Shadow mode: adopts the primary's ISN learned from its *tapped
    /// SYN/ACK* — the authoritative source. The paper's §4.1 derives the
    /// ISN from the client's handshake-completing ACK, which silently
    /// assumes that ACK is tapped; a client that piggybacks its
    /// handshake ACK onto its first request (as real stacks do) plus a
    /// single tap omission would otherwise shift the shadow's sequence
    /// space by the request size. Only meaningful in `SynRcvd`.
    pub fn shadow_resync_iss(&mut self, now: SimTime, primary_iss: SeqNum) {
        if !self.cfg.shadow || self.state != TcpState::SynRcvd || self.isn_fixed {
            return;
        }
        if primary_iss != self.iss {
            self.iss = primary_iss;
            self.snd_buf.rebase(primary_iss.add(1));
            self.stats.isn_resyncs += 1;
            self.recorder.count(Counter::ShadowIsnResyncs, 1);
        }
        self.snd_una = primary_iss;
        self.snd_nxt = primary_iss.add(1);
        self.snd_max = self.snd_nxt;
        self.shadow_peer_ack = primary_iss;
        self.isn_fixed = true;
        self.recorder.trace(
            now.as_nanos(),
            &TraceEvent::ShadowResync { conn: self.quad.trace_conn(), iss: primary_iss.raw() },
        );
    }

    /// Injects bytes recovered via the side channel directly into the
    /// reassembly buffer (backup missing-segment recovery, §4.2).
    pub fn inject_rx(&mut self, now: SimTime, seq: SeqNum, data: &[u8]) {
        if !self.state.is_synchronized() || self.state == TcpState::Closed {
            return;
        }
        self.rcv_buf.insert(seq, data);
        self.try_consume_fin(now);
    }

    /// Serves retained receive bytes (primary side of missing-segment
    /// recovery). `None` when the range is not fully held.
    pub fn fetch_rx(&self, seq: SeqNum, len: usize) -> Option<Vec<u8>> {
        self.rcv_buf.fetch(seq, len)
    }

    /// Records the backup's cumulative ACK from the side channel.
    pub fn set_backup_acked(&mut self, seq: SeqNum) {
        self.rcv_buf.set_backup_acked(seq);
    }

    /// Drops retention (primary transitions to non-fault-tolerant mode).
    pub fn disable_retention(&mut self) {
        self.rcv_buf.disable_retention();
    }

    // -------------------------------------------------------- output

    /// Advances timers, emits due (re)transmissions and ACKs, and
    /// returns the staged segments, materialized.
    ///
    /// Compatibility wrapper around the allocation-free drain
    /// ([`Tcb::poll_stage`] / [`Tcb::staged`] / [`Tcb::clear_staged`])
    /// that the stack's hot path uses.
    pub fn poll(&mut self, now: SimTime) -> Vec<TcpSegment> {
        self.poll_stage(now);
        let mut segs = Vec::with_capacity(self.out.len());
        for i in 0..self.out.len() {
            segs.push(self.materialize(i));
        }
        self.out.clear();
        segs
    }

    /// Advances timers and stages due (re)transmissions and ACKs into
    /// the internal buffer, readable via [`Tcb::staged`].
    ///
    /// The staging buffer keeps its capacity across polls, so a
    /// steady-state poll performs no heap allocation.
    pub fn poll_stage(&mut self, now: SimTime) {
        self.check_timers(now);
        self.emit_data(now);
        self.shadow_auto_trim(now);
        if self.ack_pending && self.remote_synced && self.state != TcpState::Closed {
            let mut seg = self.make_seg(TcpFlags::ACK, self.snd_nxt, Bytes::new());
            if self.sack_ok {
                let islands = self.rcv_buf.sack_ranges();
                if !islands.is_empty() {
                    let raw: Vec<(u32, u32)> =
                        islands.iter().take(4).map(|&(lo, hi)| (lo.raw(), hi.raw())).collect();
                    self.recorder.count(Counter::SackBlocksSent, raw.len() as u64);
                    seg.options.push(TcpOption::sack(&raw));
                }
            }
            self.stage(seg);
        }
        self.ack_pending = false;
    }

    /// Segments staged by the last [`Tcb::poll_stage`].
    pub fn staged(&self) -> &[StagedSeg] {
        &self.out
    }

    /// Borrows a staged data payload as the ring's two contiguous halves.
    ///
    /// # Panics
    ///
    /// Panics if `[seq, seq + len)` is not buffered — staged plans are
    /// valid until [`Tcb::clear_staged`], so this only fires on misuse.
    pub fn payload_slices(&self, seq: SeqNum, len: usize) -> (&[u8], &[u8]) {
        let (a, b) = self.snd_buf.slices_range(seq, len).expect("staged payload still buffered");
        debug_assert_eq!(a.len() + b.len(), len, "staged payload truncated");
        (a, b)
    }

    /// Discards the staged segments, keeping the buffer's capacity.
    pub fn clear_staged(&mut self) {
        self.out.clear();
    }

    /// Materializes staged segment `i` as a standalone [`TcpSegment`].
    pub(crate) fn materialize(&self, i: usize) -> TcpSegment {
        match &self.out[i] {
            StagedSeg::Ctl(seg) => seg.clone(),
            StagedSeg::Data { seq, len, flags, ack, window } => {
                let data = self
                    .snd_buf
                    .copy_range(*seq, usize::from(*len))
                    .expect("staged payload still buffered");
                let mut seg = TcpSegment::bare(
                    self.quad.local_port,
                    self.quad.remote_port,
                    seq.raw(),
                    *ack,
                    *flags,
                    *window,
                );
                seg.payload = Bytes::from(data);
                seg
            }
        }
    }

    /// The earliest instant at which [`Tcb::poll`] would do new work.
    pub fn next_deadline(&self) -> Option<SimTime> {
        [
            self.rtx_deadline,
            self.delack_deadline,
            self.probe_deadline,
            self.time_wait_deadline,
            self.pacing_gate,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn check_timers(&mut self, now: SimTime) {
        if let Some(t) = self.time_wait_deadline {
            if t <= now {
                self.time_wait_deadline = None;
                self.set_state(now, TcpState::Closed);
                return;
            }
        }
        if let Some(t) = self.rtx_deadline {
            if t <= now {
                self.on_rtx_timeout(now);
            }
        }
        if let Some(t) = self.delack_deadline {
            if t <= now {
                self.delack_deadline = None;
                self.ack_now();
            }
        }
        if let Some(t) = self.probe_deadline {
            if t <= now {
                self.probe_deadline = None;
                self.send_window_probe(now);
            }
        }
    }

    fn on_rtx_timeout(&mut self, now: SimTime) {
        self.rtx_deadline = None;
        match self.state {
            TcpState::SynSent => {
                self.syn_attempts += 1;
                if self.syn_attempts > SYN_MAX_ATTEMPTS {
                    self.set_state(now, TcpState::Closed);
                    return;
                }
                let backoff = self.rto.backoff();
                self.stage_syn(now, false);
                self.rtx_deadline = Some(now + self.rto.rto());
                self.stats.rto_retransmits += 1;
                self.recorder.count(Counter::TcpRtoFired, 1);
                self.trace_rto(now, backoff);
            }
            TcpState::SynRcvd => {
                self.syn_attempts += 1;
                if self.syn_attempts > SYN_MAX_ATTEMPTS {
                    // Half-open connection never completed (e.g. a SYN
                    // flood, or a shadow whose client ACK is lost with
                    // no primary SYN/ACK to resync from): give up so the
                    // TCB can be reaped.
                    self.set_state(now, TcpState::Closed);
                    return;
                }
                let backoff = self.rto.backoff();
                self.stage_syn(now, true);
                self.rtx_deadline = Some(now + self.rto.rto());
                self.stats.rto_retransmits += 1;
                self.recorder.count(Counter::TcpRtoFired, 1);
                self.trace_rto(now, backoff);
            }
            TcpState::Closed | TcpState::TimeWait => {}
            _ => {
                if self.flight() == 0 {
                    return;
                }
                self.cong.on_timeout(self.flight());
                let backoff = self.rto.backoff();
                self.rtt_probe = None; // Karn: no samples from retransmits
                self.stats.rto_retransmits += 1;
                self.recorder.count(Counter::TcpRtoFired, 1);
                self.trace_rto(now, backoff);
                self.trace_cc(now);
                // Classic go-back-N: roll snd_nxt back so emit_data
                // resends the whole outstanding window under slow-start
                // pacing (one segment now, doubling per RTT).
                self.snd_nxt = self.snd_una;
                self.rtx_deadline = Some(now + self.rto.rto());
            }
        }
    }

    fn trace_rto(&self, now: SimTime, backoff: u32) {
        self.recorder.trace(
            now.as_nanos(),
            &TraceEvent::RtoFired {
                conn: self.quad.trace_conn(),
                backoff,
                rto_ns: self.rto.rto().as_nanos(),
            },
        );
    }

    /// Publishes the controller's window and, on a phase transition, a
    /// `cong_phase` trace event.
    fn trace_cc(&mut self, now: SimTime) {
        self.recorder.gauge_max(Gauge::CwndBytes, u64::from(self.cong.cwnd()));
        let phase = self.cong.phase();
        if phase != self.cc_phase {
            self.recorder.trace(
                now.as_nanos(),
                &TraceEvent::CongPhase {
                    conn: self.quad.trace_conn(),
                    algo: self.cong.algo().name().into(),
                    from: self.cc_phase.into(),
                    to: phase.into(),
                    cwnd: self.cong.cwnd(),
                },
            );
            self.cc_phase = phase;
        }
    }

    /// Retransmits one segment starting at `snd_una`.
    fn retransmit_front(&mut self, now: SimTime) {
        self.rtt_probe = None; // Karn
        let data_end = self.snd_buf.end();
        if self.snd_una.lt(data_end) {
            let mut len = (data_end.distance(self.snd_una) as usize).min(usize::from(self.cfg.mss));
            // SACK recovery: the receiver already holds the ranges on the
            // scoreboard, so cap the resend at the first SACKed byte —
            // only the hole goes back out.
            if self.sack_ok && !self.sack_board.is_empty() {
                if let Some(next) = self.sack_board.next_sacked_after(self.snd_una) {
                    len = len.min(next.distance(self.snd_una).max(0) as usize);
                }
                if len == 0 {
                    return;
                }
                self.recorder.count(Counter::SelectiveRetransmits, 1);
            }
            let mut flags = TcpFlags::ACK;
            if self.snd_una.add(len as u32) == data_end {
                flags |= TcpFlags::PSH;
            }
            // A FIN that rides at the end of the buffer piggybacks.
            if self.fin_sent && self.snd_una.add(len as u32).add(1) == self.snd_max {
                flags |= TcpFlags::FIN;
            }
            self.stage_data(flags, self.snd_una, len);
            self.last_send = now;
        } else if self.fin_sent && self.snd_una == data_end {
            // Only the FIN is outstanding.
            let seg = self.make_seg(TcpFlags::FIN | TcpFlags::ACK, self.snd_una, Bytes::new());
            self.stage(seg);
            self.last_send = now;
        }
    }

    fn send_window_probe(&mut self, now: SimTime) {
        let has_pending =
            self.snd_nxt.lt(self.snd_buf.end()) || (self.fin_queued && !self.fin_sent);
        if self.snd_wnd > 0 || !has_pending {
            return;
        }
        // A classic "keepalive-style" probe: one byte below the window,
        // guaranteed to elicit an ACK carrying the current window.
        let seg = self.make_seg(TcpFlags::ACK, self.snd_una.sub(1), Bytes::new());
        self.stage(seg);
        self.stats.probes += 1;
        self.recorder.count(Counter::TcpWindowProbes, 1);
        self.probe_backoff = (self.probe_backoff + 1).min(10);
        let interval = self.rto.rto().saturating_mul(1 << self.probe_backoff.min(6));
        self.probe_deadline = Some(now + interval.min(self.cfg.rto_max));
    }

    fn emit_data(&mut self, now: SimTime) {
        if !matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::Closing
                | TcpState::LastAck
        ) {
            return;
        }
        // Restart from the initial window after an idle period (§4.1 of
        // RFC 2581); shapes the Interactive workload.
        if self.cfg.idle_restart
            && self.flight() == 0
            && self.snd_nxt == self.snd_max // not mid-recovery after a go-back-N rollback
            && self.snd_nxt.lt(self.snd_buf.end())
            && idle_restart_due(now.duration_since(self.last_send), self.rto.rto())
        {
            self.cong.on_idle_restart();
        }
        // A pacing gate in the past has served its purpose. (Gates only
        // ever exist for rate-based controllers; Reno/CUBIC never set
        // one, so this whole mechanism is inert by default.)
        if let Some(gate) = self.pacing_gate {
            if gate <= now {
                self.pacing_gate = None;
            }
        }
        loop {
            let data_end = self.snd_buf.end();
            if !self.snd_nxt.lt(data_end) {
                break;
            }
            if self.pacing_gate.is_some() {
                break; // paced: next segment waits for the gate
            }
            // SACK: while retransmitting (snd_nxt behind snd_max), hop
            // over ranges the receiver already reported holding.
            if self.sack_ok && self.snd_nxt.lt(self.snd_max) {
                let skipped = self.sack_board.skip_sacked(self.snd_nxt);
                if skipped.gt(self.snd_nxt) {
                    self.snd_nxt = skipped.min(data_end);
                    continue;
                }
            }
            let unsent = data_end.distance(self.snd_nxt) as usize;
            let wnd = self.snd_wnd.min(self.cong.cwnd());
            let usable = wnd.saturating_sub(self.flight()) as usize;
            let mut n =
                unsent.min(usable).min(usize::from(self.cfg.mss)).min(self.peer_mss as usize);
            // SACK: cap a hole retransmission at the next SACKed range so
            // the resend never re-covers delivered bytes.
            if self.sack_ok && self.snd_nxt.lt(self.snd_max) {
                if let Some(next) = self.sack_board.next_sacked_after(self.snd_nxt) {
                    n = n.min(next.distance(self.snd_nxt).max(0) as usize);
                }
            }
            if n == 0 {
                if self.snd_wnd == 0 && self.probe_deadline.is_none() {
                    self.probe_deadline = Some(now + self.rto.rto());
                    self.probe_backoff = 0;
                    self.recorder.count(Counter::TcpWindowStalls, 1);
                }
                break;
            }
            let end_seq = self.snd_nxt.add(n as u32);
            let is_new = end_seq.gt(self.snd_max);
            let mut flags = TcpFlags::ACK;
            if end_seq == data_end {
                flags |= TcpFlags::PSH;
            }
            self.stage_data(flags, self.snd_nxt, n);
            if is_new {
                let new_bytes = end_seq.distance(self.snd_max.max(self.snd_nxt)) as u64;
                self.stats.bytes_out += new_bytes;
            } else if self.sack_ok && !self.sack_board.is_empty() {
                self.recorder.count(Counter::SelectiveRetransmits, 1);
            }
            self.cong.on_sent(now, n as u32);
            if let Some(rate) = self.cong.pacing_rate() {
                let ns = (n as u64).saturating_mul(1_000_000_000) / rate.max(1);
                self.pacing_gate = Some(now + SimDuration::from_nanos(ns));
            }
            self.snd_nxt = end_seq;
            self.snd_max = self.snd_max.max(end_seq);
            self.last_send = now;
            // RTT samples only from never-retransmitted data (Karn).
            if is_new && self.rtt_probe.is_none() {
                self.rtt_probe = Some((self.snd_nxt, now));
            }
            if self.rtx_deadline.is_none() {
                self.rtx_deadline = Some(now + self.rto.rto());
            }
            // Data segments carry the ACK.
            self.ack_pending = false;
            self.delack_deadline = None;
            self.bytes_since_ack = 0;
        }
        // FIN once the buffer has fully drained onto the wire; a rolled
        // back snd_nxt (< snd_max) means the FIN is being retransmitted.
        if self.fin_queued
            && self.snd_nxt == self.snd_buf.end()
            && (!self.fin_sent || self.snd_nxt.lt(self.snd_max))
        {
            let first = !self.fin_sent;
            let seg = self.make_seg(TcpFlags::FIN | TcpFlags::ACK, self.snd_nxt, Bytes::new());
            self.stage(seg);
            self.fin_sent = true;
            self.snd_nxt = self.snd_nxt.add(1);
            self.snd_max = self.snd_max.max(self.snd_nxt);
            self.last_send = now;
            if self.rtx_deadline.is_none() {
                self.rtx_deadline = Some(now + self.rto.rto());
            }
            if first {
                let next = match self.state {
                    TcpState::Established => TcpState::FinWait1,
                    TcpState::CloseWait => TcpState::LastAck,
                    s => s,
                };
                self.set_state(now, next);
            }
            self.ack_pending = false;
        }
    }

    /// Shadow mode: bytes we just "sent" that the client has already
    /// acknowledged (because the primary delivered them first) complete
    /// instantly.
    fn shadow_auto_trim(&mut self, now: SimTime) {
        if !self.cfg.shadow {
            return;
        }
        let target = self.shadow_peer_ack.min(self.snd_nxt);
        if target.gt(self.snd_una) {
            self.snd_buf.ack_to(target);
            self.snd_una = target;
            self.after_una_advance(now);
        }
    }

    // ------------------------------------------------------- plumbing

    fn ack_now(&mut self) {
        self.ack_pending = true;
        self.delack_deadline = None;
        self.bytes_since_ack = 0;
    }

    fn stage_syn(&mut self, now: SimTime, with_ack: bool) {
        let mut flags = TcpFlags::SYN;
        if with_ack {
            flags |= TcpFlags::ACK;
        }
        let mut seg = TcpSegment::bare(
            self.quad.local_port,
            self.quad.remote_port,
            self.iss.raw(),
            if with_ack { self.irs.add(1).raw() } else { 0 },
            flags,
            // SYN window fields are never scaled (RFC 1323).
            self.rcv_buf.window().min(65535) as u16,
        );
        seg.options = vec![TcpOption::Mss(self.cfg.mss), TcpOption::SackPermitted];
        if let Some(shift) = self.cfg.window_scale {
            seg.options.push(TcpOption::WindowScale(shift.min(14)));
        }
        self.stage(seg);
        self.last_send = now;
    }

    fn make_seg(&self, flags: TcpFlags, seq: SeqNum, payload: Bytes) -> TcpSegment {
        let mut seg = TcpSegment::bare(
            self.quad.local_port,
            self.quad.remote_port,
            seq.raw(),
            0,
            flags,
            self.own_window_field(),
        );
        if self.remote_synced && flags.contains(TcpFlags::ACK) {
            seg.ack = self.ack_seq().raw();
        }
        seg.payload = payload;
        seg
    }

    fn stage(&mut self, seg: TcpSegment) {
        self.stats.segs_out += 1;
        self.out.push(StagedSeg::Ctl(seg));
    }

    /// Stages a data segment whose payload is `[seq, seq + len)` of the
    /// send buffer.
    ///
    /// Non-shadow connections stage a plan (payload borrowed at emit
    /// time — the zero-copy hot path). Shadow connections materialize
    /// eagerly: `shadow_auto_trim` may release the staged bytes later in
    /// the same poll, and the wire bytes must not change under it.
    fn stage_data(&mut self, flags: TcpFlags, seq: SeqNum, len: usize) {
        debug_assert!(len > 0 && len <= usize::from(u16::MAX));
        if self.cfg.shadow {
            let data = self.snd_buf.copy_range(seq, len).expect("staged payload present");
            let seg = self.make_seg(flags, seq, Bytes::from(data));
            self.stage(seg);
        } else {
            self.stats.segs_out += 1;
            self.out.push(StagedSeg::Data {
                seq,
                len: len as u16,
                flags,
                ack: if self.remote_synced { self.ack_seq().raw() } else { 0 },
                window: self.own_window_field(),
            });
        }
    }
}
