//! Hierarchical timer wheel over virtual-time ticks: O(1) schedule and
//! amortized-O(1) expiry for connection deadlines.
//!
//! `next_deadline()` used to scan every TCB for the minimum of its four
//! deadline fields — O(n) per poll, per node. The wheel replaces the scan
//! with four levels of 64 slots over ~1 ms ticks (shift 20 on
//! nanoseconds), covering ~67 ms / ~4.3 s / ~4.6 min / ~4.9 h per level;
//! deadlines beyond the horizon park in the farthest top-level slot and
//! cascade inward as time passes.
//!
//! # Design contract (lazy cancellation, conservative wakes)
//!
//! The wheel is a *wake index*, not the source of truth. Each TCB keeps
//! its own precise deadline fields; the stack guarantees only that for
//! every live deadline `d` there is a wheel entry at some time ≤ `d`.
//! Entries are never cancelled — a deadline that moves or disappears
//! leaves a stale entry behind, which pops harmlessly: the owning socket
//! gets polled, its `check_timers` does nothing, and the stack re-arms
//! from the TCB's real `next_deadline()`. [`TimerWheel::next_expiry`] is
//! therefore *conservative*: it may be up to one slot-span early (the
//! embedding wakes, finds nothing due, re-arms precisely — entries within
//! the current tick live in a side list carrying exact times so
//! convergence takes at most one spurious wake per level), but it is
//! never late, which is the property the simulation's liveness rests on.
//!
//! # Determinism
//!
//! Expiry order is a pure function of (schedule order, virtual time):
//! slots drain in ascending block order, entries within a slot in
//! insertion order, cascades re-dispatch in that same order. No hashing,
//! no wall clock — identical runs pop identical sequences.

const TICK_SHIFT: u32 = 20; // 2^20 ns ≈ 1.05 ms per tick
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 64;
const LEVELS: usize = 4;

#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    /// Precise expiry, nanoseconds of virtual time.
    at: u64,
    token: T,
}

#[derive(Debug)]
struct Level<T> {
    /// Bit i set ⇔ `slots[i]` is non-empty.
    occupied: u64,
    slots: Vec<Vec<Entry<T>>>,
}

impl<T> Level<T> {
    fn new() -> Self {
        // Small initial capacity per slot keeps the steady-state hot path
        // allocation-free (the zero-alloc guard test runs over this).
        Level { occupied: 0, slots: (0..SLOTS).map(|_| Vec::with_capacity(8)).collect() }
    }
}

/// A four-level hierarchical timer wheel. See the module docs.
#[derive(Debug)]
pub struct TimerWheel<T> {
    levels: Vec<Level<T>>,
    /// Entries due within the current tick, carrying precise times so
    /// [`TimerWheel::next_expiry`] converges to the exact deadline.
    imminent: Vec<Entry<T>>,
    /// Cascade staging buffer (kept for capacity reuse).
    scratch: Vec<Entry<T>>,
    now_tick: u64,
    len: usize,
}

impl<T: Copy> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> TimerWheel<T> {
    /// An empty wheel positioned at virtual time zero.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            imminent: Vec::with_capacity(16),
            scratch: Vec::with_capacity(64),
            now_tick: 0,
            len: 0,
        }
    }

    /// Live entries (stale ones included until they pop).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `token` to pop at or before virtual time `at_ns`. O(1).
    pub fn schedule(&mut self, at_ns: u64, token: T) {
        self.len += 1;
        self.place(Entry { at: at_ns, token });
    }

    fn place(&mut self, e: Entry<T>) {
        let at_tick = e.at >> TICK_SHIFT;
        if at_tick <= self.now_tick {
            // Due now or within the current tick: precise side list.
            self.imminent.push(e);
            return;
        }
        for (lvl, level) in self.levels.iter_mut().enumerate() {
            let shift = SLOT_BITS * lvl as u32;
            let high_delta = (at_tick >> shift) - (self.now_tick >> shift);
            if high_delta <= 63 {
                let slot = ((at_tick >> shift) & 63) as usize;
                level.slots[slot].push(e);
                level.occupied |= 1 << slot;
                return;
            }
        }
        // Beyond the top-level horizon (~4.9 h out): park in the farthest
        // top-level slot; it cascades inward when that block is reached.
        let shift = SLOT_BITS * (LEVELS - 1) as u32;
        let slot = (((self.now_tick >> shift) + 63) & 63) as usize;
        let top = self.levels.last_mut().expect("LEVELS > 0");
        top.slots[slot].push(e);
        top.occupied |= 1 << slot;
    }

    /// Advances the wheel to `now_ns`, pushing every token whose entry
    /// time has passed onto `expired` (in deterministic order). Entries
    /// whose blocks are reached but whose precise time is still in the
    /// future cascade toward finer levels.
    pub fn advance(&mut self, now_ns: u64, expired: &mut Vec<T>) {
        if !self.imminent.is_empty() {
            let len = &mut self.len;
            self.imminent.retain(|e| {
                if e.at <= now_ns {
                    expired.push(e.token);
                    *len -= 1;
                    false
                } else {
                    true
                }
            });
        }
        let target = now_ns >> TICK_SHIFT;
        if target <= self.now_tick {
            return;
        }
        let old = self.now_tick;
        self.now_tick = target;
        debug_assert!(self.scratch.is_empty());
        let mut batch = std::mem::take(&mut self.scratch);
        for (lvl, level) in self.levels.iter_mut().enumerate() {
            let shift = SLOT_BITS * lvl as u32;
            let old_high = old >> shift;
            let new_high = target >> shift;
            if old_high == new_high {
                break; // higher levels unchanged too
            }
            if level.occupied == 0 {
                continue;
            }
            if new_high - old_high >= 64 {
                // Jump past the whole level: drain every occupied slot.
                let mut occ = level.occupied;
                while occ != 0 {
                    let s = occ.trailing_zeros() as usize;
                    occ &= occ - 1;
                    batch.append(&mut level.slots[s]);
                }
                level.occupied = 0;
            } else {
                for h in (old_high + 1)..=new_high {
                    let s = (h & 63) as usize;
                    if level.occupied & (1 << s) != 0 {
                        batch.append(&mut level.slots[s]);
                        level.occupied &= !(1u64 << s);
                    }
                }
            }
        }
        for e in batch.drain(..) {
            if e.at <= now_ns {
                expired.push(e.token);
                self.len -= 1;
            } else {
                self.place(e);
            }
        }
        self.scratch = batch;
    }

    /// The earliest instant the wheel needs attention: never later than
    /// any scheduled entry, possibly up to one block-span early for
    /// entries still parked at coarse levels.
    pub fn next_expiry(&self) -> Option<u64> {
        let mut best: Option<u64> = self.imminent.iter().map(|e| e.at).min();
        for (lvl, level) in self.levels.iter().enumerate() {
            if level.occupied == 0 {
                continue;
            }
            let shift = SLOT_BITS * lvl as u32;
            let cur_high = self.now_tick >> shift;
            let cur_slot = (cur_high & 63) as u32;
            // Distance 1..=64 to the first occupied slot cyclically after
            // the current one — the next block boundary with entries.
            let rot = level.occupied.rotate_right((cur_slot + 1) & 63);
            let d = u64::from(rot.trailing_zeros()) + 1;
            let cand = ((cur_high + d) << shift) << TICK_SHIFT;
            best = Some(best.map_or(cand, |b| b.min(cand)));
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn drain(w: &mut TimerWheel<u32>, now: u64) -> Vec<u32> {
        let mut out = Vec::new();
        w.advance(now, &mut out);
        out
    }

    /// Drives the wheel the way the stack does — wake at `next_expiry`,
    /// pop, repeat — and returns (pop_time, token) pairs.
    fn run_to(w: &mut TimerWheel<u32>, end: u64) -> Vec<(u64, u32)> {
        let mut pops = Vec::new();
        let mut now = 0;
        while let Some(next) = w.next_expiry() {
            if next > end {
                break;
            }
            assert!(next >= now, "next_expiry must not go backwards");
            now = next;
            let mut out = Vec::new();
            w.advance(now, &mut out);
            for t in out {
                pops.push((now, t));
            }
        }
        pops
    }

    #[test]
    fn pops_at_or_after_deadline_never_late_past_wake() {
        let mut w = TimerWheel::new();
        // Deadlines across all levels: 3 ms, 40 ms, 250 ms, 7 s, 130 s.
        let deadlines = [3 * MS, 40 * MS, 250 * MS, 7_000 * MS, 130_000 * MS];
        for (i, &d) in deadlines.iter().enumerate() {
            w.schedule(d, i as u32);
        }
        let pops = run_to(&mut w, 200_000 * MS);
        assert_eq!(pops.len(), deadlines.len());
        for (popped_at, tok) in pops {
            let want = deadlines[tok as usize];
            assert!(popped_at >= want, "token {tok} popped early: {popped_at} < {want}");
            // Driven at next_expiry granularity the pop is exact: the
            // conservative wake lands at/before the deadline and the
            // imminent list carries the precise time.
            assert_eq!(popped_at, want, "token {tok} popped late");
        }
        assert!(w.is_empty());
    }

    #[test]
    fn next_expiry_is_conservative() {
        let mut w = TimerWheel::new();
        w.schedule(41 * MS + 12345, 7);
        let e = w.next_expiry().expect("scheduled");
        assert!(e <= 41 * MS + 12345);
        // Within one level-0 tick.
        assert!(41 * MS + 12345 - e < (1 << TICK_SHIFT));
    }

    #[test]
    fn time_jump_pops_everything_due() {
        let mut w = TimerWheel::new();
        w.schedule(40 * MS, 1);
        w.schedule(200 * MS, 2);
        w.schedule(61_000 * MS, 3);
        // One giant leap (the TIME_WAIT pattern in tests: now += 61 s).
        let out = drain(&mut w, 61_000 * MS);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(w.is_empty());
        assert_eq!(w.next_expiry(), None);
    }

    #[test]
    fn same_slot_order_is_insertion_order() {
        let mut w = TimerWheel::new();
        w.schedule(10 * MS + 5, 1);
        w.schedule(10 * MS + 1, 2); // earlier time, later insert, same tick
        let out = drain(&mut w, 11 * MS);
        assert_eq!(out, vec![1, 2], "same-slot entries pop in insertion order");
    }

    #[test]
    fn past_deadlines_pop_immediately() {
        let mut w = TimerWheel::new();
        let _ = drain(&mut w, 500 * MS); // move the wheel forward
        w.schedule(100 * MS, 9); // already past
        assert_eq!(w.next_expiry(), Some(100 * MS));
        let out = drain(&mut w, 500 * MS);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn beyond_horizon_parks_and_still_pops() {
        let mut w = TimerWheel::new();
        let far = 20 * 3600 * 1000 * MS; // 20 h, beyond the top level span
        w.schedule(far, 42);
        assert!(w.next_expiry().expect("parked") <= far);
        let pops = run_to(&mut w, far + MS);
        assert_eq!(pops, vec![(far, 42)]);
    }

    #[test]
    fn stale_tokens_are_the_callers_problem() {
        // Lazy cancellation: two entries for one token both pop.
        let mut w = TimerWheel::new();
        w.schedule(5 * MS, 1);
        w.schedule(9 * MS, 1);
        assert_eq!(w.len(), 2);
        let out = drain(&mut w, 10 * MS);
        assert_eq!(out, vec![1, 1]);
    }
}
