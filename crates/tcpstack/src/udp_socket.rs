//! UDP endpoints — the transport of the ST-TCP side channel.
//!
//! "A separate UDP channel is established between the primary and the
//! backup servers when these servers are started" (§4.2). Backup ACKs,
//! missing-segment requests/replies, and heartbeats all ride on it.

use bytes::Bytes;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// One received datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpRecv {
    /// Sender's IP.
    pub src_ip: Ipv4Addr,
    /// Sender's port.
    pub src_port: u16,
    /// Payload.
    pub payload: Bytes,
}

/// A bound UDP socket: a port and a receive queue.
#[derive(Debug, Clone, Default)]
pub struct UdpSocket {
    port: u16,
    queue: VecDeque<UdpRecv>,
    /// Datagrams dropped because the queue was full.
    pub overflows: u64,
    capacity: usize,
}

impl UdpSocket {
    /// Creates a socket bound to `port` with a bounded receive queue.
    pub fn new(port: u16, capacity: usize) -> Self {
        UdpSocket { port, queue: VecDeque::new(), overflows: 0, capacity }
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Enqueues a received datagram (stack-internal).
    pub(crate) fn deliver(&mut self, msg: UdpRecv) {
        if self.queue.len() >= self.capacity {
            self.overflows += 1;
            return;
        }
        self.queue.push_back(msg);
    }

    /// Dequeues the oldest datagram, if any.
    pub fn recv(&mut self) -> Option<UdpRecv> {
        self.queue.pop_front()
    }

    /// Number of queued datagrams.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_delivery() {
        let mut s = UdpSocket::new(9000, 8);
        for i in 0..3u8 {
            s.deliver(UdpRecv {
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                src_port: 1234,
                payload: Bytes::from(vec![i]),
            });
        }
        assert_eq!(s.pending(), 3);
        assert_eq!(s.recv().unwrap().payload, Bytes::from_static(&[0]));
        assert_eq!(s.recv().unwrap().payload, Bytes::from_static(&[1]));
        assert_eq!(s.recv().unwrap().payload, Bytes::from_static(&[2]));
        assert!(s.recv().is_none());
    }

    #[test]
    fn bounded_queue_drops_and_counts() {
        let mut s = UdpSocket::new(9000, 2);
        for i in 0..5u8 {
            s.deliver(UdpRecv {
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                src_port: 1,
                payload: Bytes::from(vec![i]),
            });
        }
        assert_eq!(s.pending(), 2);
        assert_eq!(s.overflows, 3);
    }
}
