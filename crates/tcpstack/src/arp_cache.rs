//! ARP resolution: static entries (the tapping configuration) plus a
//! dynamic cache.
//!
//! Static entries model the paper's `SVI → SME` / `GVI → GME` mappings
//! (§3.1): they are consulted first and never overwritten by dynamic
//! learning, because RFC 1812 forbids learning a multicast MAC from an
//! ARP reply — the whole reason the paper installs them statically.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use wire::MacAddr;

/// Static-first ARP table.
#[derive(Debug, Clone, Default)]
pub struct ArpCache {
    static_entries: HashMap<Ipv4Addr, MacAddr>,
    dynamic: HashMap<Ipv4Addr, MacAddr>,
}

impl ArpCache {
    /// Creates a cache with the given static entries.
    pub fn new(static_entries: impl IntoIterator<Item = (Ipv4Addr, MacAddr)>) -> Self {
        ArpCache { static_entries: static_entries.into_iter().collect(), dynamic: HashMap::new() }
    }

    /// Looks up the MAC for `ip` (static entries win).
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.static_entries.get(&ip).or_else(|| self.dynamic.get(&ip)).copied()
    }

    /// Learns a dynamic mapping. Static entries are never overridden,
    /// and group MACs are never learned dynamically.
    pub fn learn(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        if self.static_entries.contains_key(&ip) || mac.is_multicast() {
            return;
        }
        self.dynamic.insert(ip, mac);
    }

    /// Adds or replaces a static entry.
    pub fn insert_static(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.static_entries.insert(ip, mac);
    }

    /// Number of dynamic entries (diagnostics).
    pub fn dynamic_len(&self) -> usize {
        self.dynamic.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    #[test]
    fn static_wins_over_dynamic() {
        let sme = MacAddr::multicast_for_ip(VIP);
        let mut cache = ArpCache::new([(VIP, sme)]);
        cache.learn(VIP, MacAddr::local(9));
        assert_eq!(cache.lookup(VIP), Some(sme), "static SVI→SME must never be displaced");
    }

    #[test]
    fn dynamic_learning() {
        let mut cache = ArpCache::default();
        assert_eq!(cache.lookup(CLIENT), None);
        cache.learn(CLIENT, MacAddr::local(1));
        assert_eq!(cache.lookup(CLIENT), Some(MacAddr::local(1)));
        cache.learn(CLIENT, MacAddr::local(2));
        assert_eq!(cache.lookup(CLIENT), Some(MacAddr::local(2)), "dynamic entries refresh");
        assert_eq!(cache.dynamic_len(), 1);
    }

    #[test]
    fn multicast_never_learned_dynamically() {
        let mut cache = ArpCache::default();
        cache.learn(CLIENT, MacAddr::multicast_for_ip(CLIENT));
        assert_eq!(cache.lookup(CLIENT), None, "RFC 1812: no multicast from ARP");
    }

    #[test]
    fn insert_static_after_construction() {
        let mut cache = ArpCache::default();
        cache.insert_static(VIP, MacAddr::multicast_for_ip(VIP));
        assert!(cache.lookup(VIP).unwrap().is_multicast());
    }
}
