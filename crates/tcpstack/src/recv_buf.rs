//! The receive buffer: reassembly plus the ST-TCP *second buffer*.
//!
//! Figure 4 of the paper contrasts the standard TCP receive buffer
//! (pointers `LastByteRead ≤ NextByteExpected ≤ LastByteRecd`) with the
//! ST-TCP primary's, which adds `LastByteAcked` — the last byte the
//! *backup* has acknowledged over the side channel. The primary "discards
//! all those bytes whose sequence numbers are smaller than or equal to
//! LastByteRead or LastByteAcked, whichever is smaller", retaining
//! already-read-but-unacked bytes in a logically separate *second buffer*
//! of its own capacity ("we double the space allocated for the receive
//! buffer"). Only when that second buffer overflows do retained bytes eat
//! into the advertised window — the design that keeps ST-TCP
//! indistinguishable from TCP on the wire during failure-free operation.
//!
//! This type implements both modes: `retention_capacity == 0` is a
//! standard TCP receive buffer; non-zero enables the second buffer.

use crate::seq::SeqNum;
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};

/// Reassembly + retention receive buffer.
///
/// ```
/// use tcpstack::recv_buf::RecvBuffer;
/// use tcpstack::SeqNum;
///
/// // A primary's buffer: 16-byte first buffer, 16-byte second buffer.
/// let mut buf = RecvBuffer::new(SeqNum::new(1000), 16, 16);
/// buf.insert(SeqNum::new(1000), b"hello");
/// let mut out = [0u8; 5];
/// buf.read(&mut out); // the application consumes the bytes...
/// assert_eq!(buf.retained(), 5); // ...but they stay for the backup
/// assert_eq!(buf.fetch(SeqNum::new(1000), 5).unwrap(), b"hello");
/// buf.set_backup_acked(SeqNum::new(1005)); // side-channel ack
/// assert_eq!(buf.retained(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct RecvBuffer {
    /// Lowest retained byte (the discard floor).
    floor: SeqNum,
    /// Next byte the application will read (`LastByteRead + 1`).
    app_read: SeqNum,
    /// Next byte expected from the network (`NextByteExpected`).
    rcv_nxt: SeqNum,
    /// In-order bytes `[floor, rcv_nxt)`.
    data: VecDeque<u8>,
    /// Out-of-order segments keyed by raw start seq. Stored as [`Bytes`]
    /// slices of the received frame, so buffering a reordered segment
    /// costs a refcount bump, not a heap copy.
    ooo: BTreeMap<u32, Bytes>,
    ooo_bytes: usize,
    /// First-buffer capacity (what a standard TCP would have).
    capacity: usize,
    /// Second-buffer capacity (0 disables retention).
    retention_capacity: usize,
    /// `LastByteAcked + 1`: next byte the backup has NOT yet acknowledged.
    backup_acked: SeqNum,
}

impl RecvBuffer {
    /// Creates a buffer expecting `initial` as the first byte.
    pub fn new(initial: SeqNum, capacity: usize, retention_capacity: usize) -> Self {
        RecvBuffer {
            floor: initial,
            app_read: initial,
            rcv_nxt: initial,
            data: VecDeque::new(),
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            capacity,
            retention_capacity,
            backup_acked: initial,
        }
    }

    /// `NextByteExpected`.
    pub fn rcv_nxt(&self) -> SeqNum {
        self.rcv_nxt
    }

    /// Next byte the application will read.
    pub fn app_read_seq(&self) -> SeqNum {
        self.app_read
    }

    /// The discard floor (lowest byte still held).
    pub fn floor(&self) -> SeqNum {
        self.floor
    }

    /// Bytes ready for the application.
    pub fn readable(&self) -> usize {
        self.rcv_nxt.distance(self.app_read) as usize
    }

    /// Bytes retained solely for the backup (read by the app, unacked).
    pub fn retained(&self) -> usize {
        self.app_read.distance(self.floor) as usize
    }

    /// The advertised receive window.
    ///
    /// Standard-TCP accounting for the first buffer; retained bytes only
    /// reduce the window once they exceed the second buffer's capacity —
    /// exactly the paper's overflow behaviour.
    pub fn window(&self) -> usize {
        let unread = self.readable();
        let spill = self.retained().saturating_sub(self.retention_capacity);
        self.capacity.saturating_sub(unread + spill + self.ooo_bytes)
    }

    /// The out-of-order islands above `rcv_nxt`, merged into maximal
    /// contiguous `[lo, hi)` ranges — the receiver's SACK blocks
    /// (RFC 2018). Empty when reassembly has no gaps.
    pub fn sack_ranges(&self) -> Vec<(SeqNum, SeqNum)> {
        let mut out: Vec<(SeqNum, SeqNum)> = Vec::new();
        for (&start, seg) in &self.ooo {
            let lo = SeqNum::new(start);
            let hi = lo.add(seg.len() as u32);
            match out.last_mut() {
                Some((_, end)) if lo.le(*end) => *end = (*end).max(hi),
                _ => out.push((lo, hi)),
            }
        }
        out
    }

    /// Inserts `data` at `seq`. Returns `true` if the segment carried at
    /// least one byte that was new and in-window (callers send an
    /// immediate ACK for anything else).
    ///
    /// Copying convenience over [`RecvBuffer::insert_bytes`]; the hot
    /// receive path hands over the parsed segment payload directly.
    pub fn insert(&mut self, seq: SeqNum, data: &[u8]) -> bool {
        self.insert_bytes(seq, Bytes::copy_from_slice(data))
    }

    /// Inserts `data` at `seq` without copying: an out-of-order segment
    /// is held as a slice of the received frame until the gap fills.
    /// Same return contract as [`RecvBuffer::insert`].
    pub fn insert_bytes(&mut self, seq: SeqNum, data: Bytes) -> bool {
        if data.is_empty() {
            return false;
        }
        let mut seq = seq;
        let mut data = data;
        // Trim the head below rcv_nxt (retransmitted prefix).
        if seq.lt(self.rcv_nxt) {
            let skip = self.rcv_nxt.distance(seq);
            if skip as usize >= data.len() {
                return false; // entirely duplicate
            }
            data = data.slice(skip as usize..);
            seq = self.rcv_nxt;
        }
        // Trim the tail beyond the window edge.
        let window_edge = self.rcv_nxt.add(self.window() as u32);
        if seq.ge(window_edge) {
            return false;
        }
        let room = window_edge.distance(seq) as usize;
        if data.len() > room {
            data = data.slice(..room);
        }
        if data.is_empty() {
            return false;
        }
        if seq == self.rcv_nxt {
            self.data.extend(&data[..]);
            self.rcv_nxt = self.rcv_nxt.add(data.len() as u32);
            self.drain_ooo();
        } else {
            // Out of order: store; overlap with other entries gets
            // trimmed when drained.
            use std::collections::btree_map::Entry;
            match self.ooo.entry(seq.raw()) {
                Entry::Vacant(e) => {
                    self.ooo_bytes += data.len();
                    e.insert(data);
                }
                Entry::Occupied(mut e) => {
                    if data.len() > e.get().len() {
                        self.ooo_bytes += data.len() - e.get().len();
                        e.insert(data);
                    }
                }
            }
        }
        true
    }

    fn drain_ooo(&mut self) {
        while let Some((&start, _)) = self.ooo.first_key_value() {
            let start_seq = SeqNum(start);
            if start_seq.gt(self.rcv_nxt) {
                break;
            }
            let seg = self.ooo.pop_first().expect("just peeked").1;
            self.ooo_bytes -= seg.len();
            let skip = self.rcv_nxt.distance(start_seq) as usize;
            if skip < seg.len() {
                self.data.extend(&seg[skip..]);
                self.rcv_nxt = self.rcv_nxt.add((seg.len() - skip) as u32);
            }
        }
    }

    /// Copies readable bytes into `buf`, advancing the application
    /// pointer; returns the count. In retention mode the bytes stay in
    /// the (second) buffer until [`RecvBuffer::set_backup_acked`] passes
    /// them.
    pub fn read(&mut self, buf: &mut [u8]) -> usize {
        let n = buf.len().min(self.readable());
        let off = self.app_read.distance(self.floor) as usize;
        self.copy_out(off, &mut buf[..n]);
        self.app_read = self.app_read.add(n as u32);
        self.discard();
        n
    }

    /// Copies `out.len()` held bytes starting `off` bytes above the
    /// floor, as at most two slice memcpys across the ring seam.
    fn copy_out(&self, off: usize, out: &mut [u8]) {
        let n = out.len();
        let (front, back) = self.data.as_slices();
        if off < front.len() {
            let a = n.min(front.len() - off);
            out[..a].copy_from_slice(&front[off..off + a]);
            out[a..].copy_from_slice(&back[..n - a]);
        } else {
            let o = off - front.len();
            out.copy_from_slice(&back[o..o + n]);
        }
    }

    /// Records the backup's cumulative acknowledgment (`LastByteAcked+1`)
    /// from the side channel, releasing retained bytes it covers.
    pub fn set_backup_acked(&mut self, acked: SeqNum) {
        if acked.gt(self.backup_acked) {
            self.backup_acked = acked.min(self.rcv_nxt);
            self.discard();
        }
    }

    /// Switches retention off (primary → non-fault-tolerant mode after a
    /// backup failure, paper §4.4) and releases everything retained.
    pub fn disable_retention(&mut self) {
        self.retention_capacity = 0;
        self.backup_acked = self.rcv_nxt;
        self.discard();
    }

    /// Whether retention is active.
    pub fn retention_enabled(&self) -> bool {
        self.retention_capacity > 0
    }

    /// Serves retained (or still unread) bytes `[seq, seq+len)` for the
    /// backup's missing-segment recovery. Returns `None` if any requested
    /// byte is no longer held or was never received.
    pub fn fetch(&self, seq: SeqNum, len: usize) -> Option<Vec<u8>> {
        if !seq.ge(self.floor) || !seq.add(len as u32).le(self.rcv_nxt) {
            return None;
        }
        let off = seq.distance(self.floor) as usize;
        let mut out = vec![0u8; len];
        self.copy_out(off, &mut out);
        Some(out)
    }

    fn discard(&mut self) {
        let keep_from = if self.retention_capacity > 0 {
            // Paper rule: discard up to min(LastByteRead, LastByteAcked).
            self.app_read.min(self.backup_acked)
        } else {
            self.app_read
        };
        if keep_from.gt(self.floor) {
            let n = keep_from.distance(self.floor) as usize;
            self.data.drain(..n);
            self.floor = keep_from;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn std_buf() -> RecvBuffer {
        RecvBuffer::new(SeqNum(1000), 16, 0)
    }

    fn ft_buf() -> RecvBuffer {
        // First buffer 16, second buffer 16 ("double the space").
        RecvBuffer::new(SeqNum(1000), 16, 16)
    }

    #[test]
    fn in_order_delivery() {
        let mut b = std_buf();
        assert!(b.insert(SeqNum(1000), b"hello"));
        assert_eq!(b.rcv_nxt(), SeqNum(1005));
        assert_eq!(b.readable(), 5);
        let mut out = [0u8; 8];
        assert_eq!(b.read(&mut out), 5);
        assert_eq!(&out[..5], b"hello");
        assert_eq!(b.readable(), 0);
        assert_eq!(b.window(), 16, "standard buffer frees space on read");
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut b = std_buf();
        assert!(b.insert(SeqNum(1005), b"world"));
        assert_eq!(b.rcv_nxt(), SeqNum(1000), "gap holds rcv_nxt");
        assert_eq!(b.readable(), 0);
        assert!(b.insert(SeqNum(1000), b"hello"));
        assert_eq!(b.rcv_nxt(), SeqNum(1010));
        let mut out = [0u8; 10];
        assert_eq!(b.read(&mut out), 10);
        assert_eq!(&out, b"helloworld");
    }

    #[test]
    fn duplicate_rejected() {
        let mut b = std_buf();
        assert!(b.insert(SeqNum(1000), b"abc"));
        assert!(!b.insert(SeqNum(1000), b"abc"), "full duplicate");
        assert!(b.insert(SeqNum(1001), b"bcde"), "partial overlap carries new tail");
        assert_eq!(b.rcv_nxt(), SeqNum(1005));
    }

    #[test]
    fn window_limits_acceptance() {
        let mut b = std_buf(); // capacity 16
        assert!(b.insert(SeqNum(1000), &[b'x'; 30]));
        assert_eq!(b.rcv_nxt(), SeqNum(1016), "tail beyond window trimmed");
        assert_eq!(b.window(), 0);
        assert!(!b.insert(SeqNum(1016), b"y"), "zero window accepts nothing");
        let mut out = [0u8; 4];
        b.read(&mut out);
        assert_eq!(b.window(), 4);
    }

    #[test]
    fn sack_ranges_report_merged_islands() {
        let mut b = RecvBuffer::new(SeqNum(1000), 64, 0);
        assert!(b.sack_ranges().is_empty());
        b.insert(SeqNum(1004), b"bb");
        b.insert(SeqNum(1010), b"cc");
        b.insert(SeqNum(1006), b"xx"); // touches the first island
        assert_eq!(
            b.sack_ranges(),
            vec![(SeqNum(1004), SeqNum(1008)), (SeqNum(1010), SeqNum(1012))]
        );
        b.insert(SeqNum(1000), b"aaaa"); // fills the head gap
        assert_eq!(b.sack_ranges(), vec![(SeqNum(1010), SeqNum(1012))]);
        b.insert(SeqNum(1008), b"yy");
        assert!(b.sack_ranges().is_empty(), "fully reassembled");
    }

    #[test]
    fn ooo_duplicate_insert_accounting() {
        let mut b = std_buf();
        assert!(b.insert(SeqNum(1004), b"zz"));
        assert!(b.insert(SeqNum(1004), b"zz"));
        assert!(b.insert(SeqNum(1000), b"aaaa"));
        assert_eq!(b.rcv_nxt(), SeqNum(1006));
        assert_eq!(b.window(), 16 - 6);
    }

    // ---- retention (ST-TCP second buffer) ----

    #[test]
    fn retention_keeps_read_bytes_until_backup_ack() {
        let mut b = ft_buf();
        b.insert(SeqNum(1000), b"0123456789");
        let mut out = [0u8; 10];
        b.read(&mut out);
        assert_eq!(b.retained(), 10, "read bytes move to the second buffer");
        assert_eq!(b.floor(), SeqNum(1000));
        assert_eq!(b.window(), 16, "second buffer does not shrink the window");
        assert_eq!(b.fetch(SeqNum(1002), 4).unwrap(), b"2345");
        b.set_backup_acked(SeqNum(1006));
        assert_eq!(b.retained(), 4);
        assert_eq!(b.fetch(SeqNum(1002), 4), None, "released bytes are gone");
        assert_eq!(b.fetch(SeqNum(1006), 4).unwrap(), b"6789");
    }

    #[test]
    fn paper_rule_discard_min_of_read_and_acked() {
        let mut b = ft_buf();
        b.insert(SeqNum(1000), b"abcdefgh");
        // Backup acks ahead of the application reading.
        b.set_backup_acked(SeqNum(1004));
        assert_eq!(b.floor(), SeqNum(1000), "unread bytes never discarded");
        let mut out = [0u8; 2];
        b.read(&mut out);
        assert_eq!(b.floor(), SeqNum(1002), "floor follows min(read, acked)");
        let mut out = [0u8; 6];
        b.read(&mut out);
        assert_eq!(b.floor(), SeqNum(1004), "now acked is the min");
    }

    #[test]
    fn second_buffer_overflow_shrinks_window() {
        // First buffer 8, second buffer 4.
        let mut b = RecvBuffer::new(SeqNum(0), 8, 4);
        b.insert(SeqNum(0), b"01234567");
        let mut out = [0u8; 8];
        b.read(&mut out);
        // 8 retained > 4 second-buffer capacity: 4 spill into the first.
        assert_eq!(b.retained(), 8);
        assert_eq!(b.window(), 4, "spill reduces the advertised window");
        b.set_backup_acked(SeqNum(4));
        assert_eq!(b.window(), 8, "ack drains the spill");
    }

    #[test]
    fn backup_ack_beyond_rcv_nxt_clamped() {
        let mut b = ft_buf();
        b.insert(SeqNum(1000), b"ab");
        b.set_backup_acked(SeqNum(5000));
        let mut out = [0u8; 2];
        b.read(&mut out);
        assert_eq!(b.floor(), SeqNum(1002));
    }

    #[test]
    fn disable_retention_releases_everything() {
        let mut b = ft_buf();
        b.insert(SeqNum(1000), b"abcdef");
        let mut out = [0u8; 6];
        b.read(&mut out);
        assert_eq!(b.retained(), 6);
        assert!(b.retention_enabled());
        b.disable_retention();
        assert!(!b.retention_enabled());
        assert_eq!(b.retained(), 0);
        assert_eq!(b.fetch(SeqNum(1000), 1), None);
    }

    #[test]
    fn fetch_spanning_unread_and_retained() {
        let mut b = ft_buf();
        b.insert(SeqNum(1000), b"abcdefgh");
        let mut out = [0u8; 4];
        b.read(&mut out); // retained: abcd, unread: efgh
        assert_eq!(b.fetch(SeqNum(1002), 4).unwrap(), b"cdef", "fetch may span both regions");
        assert_eq!(b.fetch(SeqNum(1000), 9), None, "past rcv_nxt refused");
    }

    #[test]
    fn wrapping_sequence_space() {
        let start = SeqNum(u32::MAX - 3);
        let mut b = RecvBuffer::new(start, 16, 16);
        assert!(b.insert(start, b"abcdefgh"));
        assert_eq!(b.rcv_nxt(), SeqNum(4));
        let mut out = [0u8; 8];
        assert_eq!(b.read(&mut out), 8);
        assert_eq!(&out, b"abcdefgh");
        b.set_backup_acked(SeqNum(2));
        assert_eq!(b.retained(), 2);
    }
}
