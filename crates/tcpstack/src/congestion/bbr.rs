//! Simplified BBR congestion control (model/probe-bw variant).
//!
//! Instead of reacting to loss, BBR builds an explicit model of the path
//! — bottleneck bandwidth (windowed max of delivery-rate samples) and
//! propagation delay (windowed min RTT) — and paces transmission at the
//! model's rate. The cwnd becomes a secondary cap (2×BDP) rather than
//! the primary control. Phases follow the classic state machine:
//!
//! * **Startup** — pace at ~2.9× the estimated rate to find the
//!   bottleneck quickly (exponential, like slow start);
//! * **Drain** — pace below rate once bandwidth stops growing, to bleed
//!   the queue Startup built;
//! * **ProbeBw** — cycle pacing gain `[1.25, 0.75, 1, 1, 1, 1, 1, 1]`
//!   around the estimate, one step per min-RTT;
//! * **ProbeRtt** — every ~10 s, drop the window to 4 MSS briefly so the
//!   queue empties and a fresh propagation-delay sample can be taken.
//!
//! Loss is almost ignored: a triple-dup-ACK still requests the fast
//! retransmit (so holes get repaired promptly) but does not collapse the
//! model; an RTO resets cwnd conservatively while keeping the bandwidth
//! estimate, so recovery is quick.

use super::{CongSnapshot, CongestionAlgo, CongestionController};
use netsim::{SimDuration, SimTime};

/// Startup/Drain pacing gain: 2/ln(2), the fastest gain that still
/// lets each delivery-rate sample reflect the previous doubling.
const STARTUP_GAIN: f64 = 2.885;
/// ProbeBw gain cycle; one step per min-RTT.
const CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// cwnd cap as a multiple of the BDP.
const CWND_GAIN: f64 = 2.0;
/// How long a min-RTT sample stays fresh before ProbeRtt re-measures.
const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);
/// How long ProbeRtt holds the window down.
const PROBE_RTT_HOLD: SimDuration = SimDuration::from_millis(200);
/// Bandwidth filter length, in gain-cycle steps (~10 RTTs).
const BW_FILTER_LEN: usize = 10;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

/// Simplified BBR state for one connection.
#[derive(Debug, Clone)]
pub struct Bbr {
    mss: u32,
    cwnd: u32,
    initial_cwnd: u32,
    mode: Mode,
    /// Delivery-rate epoch start — samples are taken over at least one
    /// min-RTT of acked bytes, NOT per ACK: per-ACK `acked/srtt` would
    /// undercount by the ack-decimation factor (delayed ACKs cover ~2
    /// MSS each) and collapse the model.
    epoch_start: Option<SimTime>,
    /// Bytes acknowledged since `epoch_start`.
    epoch_bytes: u64,
    /// Windowed max-filter over delivery-rate samples (bytes/sec); one
    /// slot per gain-cycle step, rotated as the cycle advances.
    bw_filter: [u64; BW_FILTER_LEN],
    bw_slot: usize,
    /// Current bottleneck-bandwidth estimate (max of the filter).
    btl_bw: u64,
    min_rtt: Option<SimDuration>,
    min_rtt_stamp: SimTime,
    /// When the current ProbeRtt hold ends.
    probe_rtt_done: SimTime,
    /// Window to restore after ProbeRtt.
    prior_cwnd: u32,
    cycle_idx: usize,
    cycle_stamp: SimTime,
    /// Plateau detection for Startup→Drain.
    full_bw: u64,
    full_bw_count: u32,
    dup_acks: u32,
    fast_retransmits: u64,
    timeout_retransmits: u64,
}

impl Bbr {
    /// Creates BBR state with a 10-MSS initial window (BBR assumes
    /// modern IW10; pacing, not the window, is the real control).
    pub fn new(mss: u32) -> Self {
        let initial_cwnd = 10 * mss;
        Bbr {
            mss,
            cwnd: initial_cwnd,
            initial_cwnd,
            mode: Mode::Startup,
            epoch_start: None,
            epoch_bytes: 0,
            bw_filter: [0; BW_FILTER_LEN],
            bw_slot: 0,
            btl_bw: 0,
            min_rtt: None,
            min_rtt_stamp: SimTime::ZERO,
            probe_rtt_done: SimTime::ZERO,
            prior_cwnd: initial_cwnd,
            cycle_idx: 0,
            cycle_stamp: SimTime::ZERO,
            full_bw: 0,
            full_bw_count: 0,
            dup_acks: 0,
            fast_retransmits: 0,
            timeout_retransmits: 0,
        }
    }

    /// Bandwidth-delay product from the current model, in bytes.
    fn bdp(&self) -> u32 {
        match self.min_rtt {
            Some(rtt) if self.btl_bw > 0 => {
                let bdp = self.btl_bw as f64 * rtt.as_nanos() as f64 / 1e9;
                bdp as u32
            }
            _ => self.initial_cwnd,
        }
    }

    /// Accumulates acked bytes and closes a delivery-rate epoch once at
    /// least one min-RTT has elapsed, feeding `epoch_bytes / elapsed`
    /// into the windowed max filter. Returns whether an epoch closed
    /// (i.e. `btl_bw` holds a fresh estimate).
    fn sample_bw(&mut self, now: SimTime, acked: u32) -> bool {
        let Some(start) = self.epoch_start else {
            // First ACK opens the epoch; no interval to measure yet.
            self.epoch_start = Some(now);
            return false;
        };
        self.epoch_bytes += u64::from(acked);
        let window = self.min_rtt.unwrap_or(SimDuration::from_millis(10));
        let elapsed = now.duration_since(start);
        if elapsed.is_zero() || elapsed < window {
            return false;
        }
        let rate = (self.epoch_bytes as f64 * 1e9 / elapsed.as_nanos() as f64) as u64;
        let slot = &mut self.bw_filter[self.bw_slot];
        *slot = (*slot).max(rate);
        self.btl_bw = self.bw_filter.iter().copied().max().unwrap_or(0);
        self.epoch_start = Some(now);
        self.epoch_bytes = 0;
        true
    }

    /// Advances the gain cycle (and rotates the bw filter) once per
    /// min-RTT of elapsed time.
    fn advance_cycle(&mut self, now: SimTime) {
        let step = self.min_rtt.unwrap_or(SimDuration::from_millis(100));
        if now.duration_since(self.cycle_stamp) < step {
            return;
        }
        self.cycle_stamp = now;
        self.cycle_idx = (self.cycle_idx + 1) % CYCLE.len();
        self.bw_slot = (self.bw_slot + 1) % BW_FILTER_LEN;
        self.bw_filter[self.bw_slot] = 0;
    }

    /// Startup exit: bandwidth stopped growing ≥25% for 3 rounds.
    fn check_full_pipe(&mut self) {
        if self.btl_bw > self.full_bw + self.full_bw / 4 {
            self.full_bw = self.btl_bw;
            self.full_bw_count = 0;
        } else {
            self.full_bw_count += 1;
            if self.full_bw_count >= 3 {
                self.mode = Mode::Drain;
            }
        }
    }
}

impl CongestionController for Bbr {
    fn on_new_ack(&mut self, now: SimTime, flight: u32, acked: u32, srtt: Option<SimDuration>) {
        self.dup_acks = 0;
        if let Some(rtt) = srtt {
            if !rtt.is_zero() && self.min_rtt.is_none_or(|m| rtt <= m) {
                self.min_rtt = Some(rtt);
                self.min_rtt_stamp = now;
            }
        }
        let epoch_closed = self.sample_bw(now, acked);
        self.advance_cycle(now);

        // ProbeRtt entry: the min-RTT sample went stale.
        if self.mode != Mode::ProbeRtt
            && self.min_rtt.is_some()
            && now.duration_since(self.min_rtt_stamp) > MIN_RTT_WINDOW
        {
            self.mode = Mode::ProbeRtt;
            self.prior_cwnd = self.cwnd;
            self.probe_rtt_done = now + PROBE_RTT_HOLD;
        }

        match self.mode {
            Mode::Startup => {
                // Exponential growth, like slow start but ack-clocked.
                self.cwnd = self.cwnd.saturating_add(acked);
                // Plateau detection is per *estimate*, not per ACK: the
                // estimate only moves when an epoch closes, so counting
                // every ACK would see false plateaus mid-epoch.
                if epoch_closed {
                    self.check_full_pipe();
                }
            }
            Mode::Drain => {
                let bdp = self.bdp();
                if flight <= bdp {
                    self.mode = Mode::ProbeBw;
                    self.cycle_stamp = now;
                    self.cycle_idx = 0;
                }
                self.cwnd = (CWND_GAIN * f64::from(bdp)) as u32;
            }
            Mode::ProbeBw => {
                self.cwnd = ((CWND_GAIN * f64::from(self.bdp())) as u32).max(4 * self.mss);
            }
            Mode::ProbeRtt => {
                self.cwnd = 4 * self.mss;
                if now >= self.probe_rtt_done {
                    self.min_rtt_stamp = now;
                    if let Some(rtt) = srtt {
                        self.min_rtt = Some(rtt);
                    }
                    self.cwnd = self.prior_cwnd.max(4 * self.mss);
                    self.mode = if self.full_bw_count >= 3 { Mode::ProbeBw } else { Mode::Startup };
                }
            }
        }
        self.cwnd = self.cwnd.max(4 * self.mss);
    }

    fn on_dup_ack(&mut self, _flight: u32) -> bool {
        self.dup_acks += 1;
        if self.dup_acks == 3 {
            // Repair the hole but keep the model: BBR treats isolated
            // loss as noise, not a congestion signal.
            self.fast_retransmits += 1;
            true
        } else {
            false
        }
    }

    fn on_timeout(&mut self, _flight: u32) {
        // Conservative window, but the bandwidth model survives — the
        // next ACKs restore cwnd straight to 2×BDP.
        self.cwnd = self.mss.max(self.initial_cwnd / 2);
        self.dup_acks = 0;
        self.timeout_retransmits += 1;
        // The retransmission epoch delivers nothing new; start fresh.
        self.epoch_start = None;
        self.epoch_bytes = 0;
    }

    fn on_sent(&mut self, _now: SimTime, _bytes: u32) {}

    fn on_idle_restart(&mut self) {
        self.cwnd = self.cwnd.min(self.initial_cwnd);
        self.dup_acks = 0;
        self.epoch_start = None;
        self.epoch_bytes = 0;
        // Stale after idle: re-grow the model from scratch.
        if self.mode == Mode::ProbeRtt {
            self.mode = Mode::ProbeBw;
        }
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        // BBR has no ssthresh; report the BDP as the nearest analogue so
        // snapshots and gauges stay meaningful.
        self.bdp().max(2 * self.mss)
    }

    fn pacing_rate(&self) -> Option<u64> {
        if self.btl_bw == 0 {
            return None; // no model yet: window-limited like Reno
        }
        let gain = match self.mode {
            Mode::Startup => STARTUP_GAIN,
            Mode::Drain => 1.0 / STARTUP_GAIN,
            Mode::ProbeBw => CYCLE[self.cycle_idx],
            Mode::ProbeRtt => 1.0,
        };
        Some(((self.btl_bw as f64 * gain) as u64).max(u64::from(self.mss)))
    }

    fn in_fast_recovery(&self) -> bool {
        false
    }

    fn dup_acks(&self) -> u32 {
        self.dup_acks
    }

    fn fast_retransmits(&self) -> u64 {
        self.fast_retransmits
    }

    fn timeout_retransmits(&self) -> u64 {
        self.timeout_retransmits
    }

    fn phase(&self) -> &'static str {
        match self.mode {
            Mode::Startup => "startup",
            Mode::Drain => "drain",
            Mode::ProbeBw => "probe_bw",
            Mode::ProbeRtt => "probe_rtt",
        }
    }

    fn algo(&self) -> CongestionAlgo {
        CongestionAlgo::Bbr
    }

    fn import(&mut self, snap: CongSnapshot) {
        self.cwnd = snap.cwnd.max(4 * self.mss);
        self.prior_cwnd = self.cwnd;
        // The bandwidth model cannot be mirrored cheaply; rebuild it from
        // the imported window once ACKs flow (Startup re-probes quickly).
        self.mode = Mode::Startup;
        self.full_bw = 0;
        self.full_bw_count = 0;
        self.dup_acks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1460;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Drives `acked` bytes per `rtt_ms` RTT for `rounds` rounds. The
    /// reported flight equals the delivered-per-RTT amount — the paced
    /// steady state (rate × RTT), which is what lets Drain observe the
    /// queue emptying and hand off to ProbeBw.
    fn drive(b: &mut Bbr, start_ms: u64, rounds: u64, acked: u32, rtt_ms: u64) -> u64 {
        let rtt = SimDuration::from_millis(rtt_ms);
        for i in 0..rounds {
            b.on_new_ack(at(start_ms + i * rtt_ms), acked, acked, Some(rtt));
        }
        start_ms + rounds * rtt_ms
    }

    #[test]
    fn startup_grows_exponentially_then_drains() {
        let mut b = Bbr::new(MSS);
        assert_eq!(b.phase(), "startup");
        // Rising delivery rate: stay in startup.
        let rtt = SimDuration::from_millis(40);
        let mut acked = MSS;
        let mut t = 0u64;
        while b.phase() == "startup" && t < 10_000 {
            b.on_new_ack(at(t), b.cwnd(), acked, Some(rtt));
            acked = acked.saturating_add(acked / 8).min(64 * MSS);
            t += 40;
            if acked == 64 * MSS {
                // Rate plateaued: startup must exit within a few rounds.
                let before = t;
                while b.phase() == "startup" && t < before + 400 {
                    b.on_new_ack(at(t), b.cwnd(), acked, Some(rtt));
                    t += 40;
                }
                break;
            }
        }
        assert_ne!(b.phase(), "startup", "plateaued bandwidth must exit startup");
    }

    #[test]
    fn model_tracks_delivery_rate() {
        let mut b = Bbr::new(MSS);
        // 10 MSS per 50 ms RTT ≈ 292 KB/s.
        drive(&mut b, 0, 40, 10 * MSS, 50);
        let rate = 10 * u64::from(MSS) * 20;
        assert!(
            b.btl_bw > rate / 2 && b.btl_bw < rate * 2,
            "btl_bw {} should be near {rate}",
            b.btl_bw
        );
        assert_eq!(b.min_rtt, Some(SimDuration::from_millis(50)));
        assert!(b.pacing_rate().is_some());
    }

    #[test]
    fn cwnd_settles_near_two_bdp() {
        let mut b = Bbr::new(MSS);
        let t = drive(&mut b, 0, 200, 10 * MSS, 50);
        assert_eq!(b.phase(), "probe_bw");
        drive(&mut b, t, 20, 10 * MSS, 50);
        let bdp = b.bdp();
        let lo = (f64::from(bdp) * 1.8) as u32;
        let hi = (f64::from(bdp) * 2.2) as u32;
        assert!(
            (lo..=hi).contains(&b.cwnd()) || b.cwnd() == 4 * MSS,
            "cwnd {} should track 2×BDP {bdp}",
            b.cwnd()
        );
    }

    #[test]
    fn loss_does_not_collapse_the_model() {
        let mut b = Bbr::new(MSS);
        drive(&mut b, 0, 100, 10 * MSS, 50);
        let bw = b.btl_bw;
        let cwnd = b.cwnd();
        assert!(!b.on_dup_ack(cwnd));
        assert!(!b.on_dup_ack(cwnd));
        assert!(b.on_dup_ack(cwnd), "third dup ACK still requests the retransmit");
        assert_eq!(b.btl_bw, bw, "bandwidth estimate must survive loss");
        assert_eq!(b.cwnd(), cwnd, "dup ACKs must not collapse cwnd");
        assert_eq!(b.fast_retransmits(), 1);
        // RTO: window resets but the model survives, and ACKs restore it.
        b.on_timeout(cwnd);
        assert!(b.cwnd() < cwnd);
        assert_eq!(b.btl_bw, bw);
        drive(&mut b, 6000, 5, 10 * MSS, 50);
        assert!(b.cwnd() > b.initial_cwnd, "cwnd should rebuild from the model");
    }

    #[test]
    fn probe_rtt_fires_when_sample_goes_stale() {
        let mut b = Bbr::new(MSS);
        let mut t = drive(&mut b, 0, 100, 10 * MSS, 50);
        assert_eq!(b.phase(), "probe_bw");
        // Feed ACKs with a *higher* RTT for >10 s: min-RTT goes stale.
        let rtt = SimDuration::from_millis(80);
        let mut saw_probe_rtt = false;
        for _ in 0..200 {
            t += 80;
            b.on_new_ack(at(t), b.cwnd(), 10 * MSS, Some(rtt));
            if b.phase() == "probe_rtt" {
                saw_probe_rtt = true;
                assert_eq!(b.cwnd(), 4 * MSS, "probe-rtt must shrink the window");
            }
        }
        assert!(saw_probe_rtt, "stale min-RTT must trigger probe-rtt");
        assert_eq!(b.phase(), "probe_bw", "probe-rtt must end after the hold");
        assert!(b.cwnd() > 4 * MSS, "window must be restored after probe-rtt");
    }

    #[test]
    fn pacing_gain_cycles_in_probe_bw() {
        let mut b = Bbr::new(MSS);
        let mut t = drive(&mut b, 0, 100, 10 * MSS, 50);
        assert_eq!(b.phase(), "probe_bw");
        let mut rates = std::collections::BTreeSet::new();
        for _ in 0..20 {
            t += 50;
            b.on_new_ack(at(t), b.cwnd(), 10 * MSS, Some(SimDuration::from_millis(50)));
            if let Some(r) = b.pacing_rate() {
                rates.insert(r);
            }
        }
        assert!(rates.len() >= 2, "gain cycle must produce distinct pacing rates: {rates:?}");
    }
}
