//! CUBIC congestion control (RFC 8312).
//!
//! The window regrows along a cubic curve anchored at the pre-loss
//! window `W_max`: concave up to the plateau, then convex probing beyond
//! it. Growth depends on *time since the loss epoch*, not on RTT, which
//! is the property that lets CUBIC fill high-BDP paths where Reno's one
//! MSS per RTT takes minutes. A Reno-tracking estimate (`W_est`) keeps
//! short-RTT paths TCP-friendly, as §4.2 of the RFC requires.
//!
//! Slow start, fast-recovery entry/exit, and the dup-ACK machinery are
//! structurally Reno's — only the avoidance growth law differs — so the
//! TCB drives every controller identically.

use super::{CongSnapshot, CongestionAlgo, CongestionController};
use netsim::{SimDuration, SimTime};

/// RFC 8312 §5: the cubic scaling constant (MSS/s³).
const C: f64 = 0.4;
/// RFC 8312 §4.5: multiplicative decrease factor.
const BETA: f64 = 0.7;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Open,
    FastRecovery,
}

/// CUBIC state for one connection.
#[derive(Debug, Clone)]
pub struct Cubic {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    phase: Phase,
    dup_acks: u32,
    initial_cwnd: u32,
    /// Window (bytes) just before the last reduction.
    w_max: f64,
    /// Seconds for the cubic to regrow to `w_max` from the reduced window.
    k: f64,
    /// Start of the current growth epoch (`None` = next CA ack begins one).
    epoch_start: Option<SimTime>,
    /// Reno-tracking window estimate for the TCP-friendly region (bytes).
    w_est: f64,
    fast_retransmits: u64,
    timeout_retransmits: u64,
}

impl Cubic {
    /// Creates CUBIC state with the same initial window as Reno (2 MSS),
    /// keeping the handshake-adjacent behaviour comparable.
    pub fn new(mss: u32) -> Self {
        let initial_cwnd = 2 * mss;
        Cubic {
            mss,
            cwnd: initial_cwnd,
            ssthresh: u32::MAX,
            phase: Phase::Open,
            dup_acks: 0,
            initial_cwnd,
            w_max: 0.0,
            k: 0.0,
            epoch_start: None,
            w_est: 0.0,
            fast_retransmits: 0,
            timeout_retransmits: 0,
        }
    }

    /// Records a loss event: remember `W_max` (with fast convergence,
    /// RFC 8312 §4.6), shrink by β, and end the growth epoch.
    fn on_loss(&mut self) {
        let cwnd = f64::from(self.cwnd);
        self.w_max = if cwnd < self.w_max {
            // Fast convergence: release bandwidth faster when losses
            // arrive below the previous plateau.
            cwnd * (2.0 - BETA) / 2.0
        } else {
            cwnd
        };
        self.ssthresh = ((cwnd * BETA) as u32).max(2 * self.mss);
        self.epoch_start = None;
    }

    /// One congestion-avoidance ACK: move toward the cubic target.
    fn grow(&mut self, now: SimTime, acked: u32, srtt: Option<SimDuration>) {
        let mss = f64::from(self.mss);
        let cwnd = f64::from(self.cwnd);
        let rtt = srtt.unwrap_or(SimDuration::from_millis(100));
        if self.epoch_start.is_none() {
            self.epoch_start = Some(now);
            if self.w_max > cwnd {
                self.k = ((self.w_max - cwnd) / (C * mss)).cbrt();
            } else {
                self.k = 0.0;
                self.w_max = cwnd;
            }
            self.w_est = cwnd;
        }
        // Target the curve one RTT ahead (RFC 8312 §4.1).
        let t = now.duration_since(self.epoch_start.expect("set above")).as_nanos() as f64 / 1e9
            + rtt.as_nanos() as f64 / 1e9;
        let d = t - self.k;
        let w_cubic = C * mss * d * d * d + self.w_max;
        // TCP-friendly region (§4.2): track what Reno would have.
        self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) * mss * f64::from(acked) / cwnd;
        let target = w_cubic.max(self.w_est);
        if target > cwnd {
            // (target - cwnd)/cwnd MSS per ACK, capped at 1.5x/RTT-step
            // to stay sane across long idle gaps in the event-driven sim.
            let inc = (mss * (target - cwnd) / cwnd).min(cwnd / 2.0).max(1.0);
            self.cwnd = self.cwnd.saturating_add(inc as u32);
        } else {
            // At or above the curve: minimal growth keeps probing.
            self.cwnd = self.cwnd.saturating_add(1);
        }
    }
}

impl CongestionController for Cubic {
    fn on_new_ack(&mut self, now: SimTime, _flight: u32, acked: u32, srtt: Option<SimDuration>) {
        self.dup_acks = 0;
        match self.phase {
            Phase::FastRecovery => {
                self.cwnd = self.ssthresh;
                self.phase = Phase::Open;
                self.epoch_start = None;
            }
            Phase::Open => {
                if self.cwnd < self.ssthresh {
                    self.cwnd = self.cwnd.saturating_add(self.mss); // slow start
                } else {
                    self.grow(now, acked, srtt);
                }
            }
        }
    }

    fn on_dup_ack(&mut self, _flight: u32) -> bool {
        self.dup_acks += 1;
        match self.phase {
            Phase::Open if self.dup_acks == 3 => {
                self.on_loss();
                // Reno-style inflation keeps the in-flight accounting
                // the TCB expects during recovery.
                self.cwnd = self.ssthresh + 3 * self.mss;
                self.phase = Phase::FastRecovery;
                self.fast_retransmits += 1;
                true
            }
            Phase::FastRecovery => {
                self.cwnd = self.cwnd.saturating_add(self.mss);
                false
            }
            _ => false,
        }
    }

    fn on_timeout(&mut self, _flight: u32) {
        self.on_loss();
        self.cwnd = self.mss;
        self.phase = Phase::Open;
        self.dup_acks = 0;
        self.timeout_retransmits += 1;
    }

    fn on_sent(&mut self, _now: SimTime, _bytes: u32) {}

    fn on_idle_restart(&mut self) {
        self.cwnd = self.cwnd.min(self.initial_cwnd);
        self.phase = Phase::Open;
        self.dup_acks = 0;
        self.epoch_start = None;
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn pacing_rate(&self) -> Option<u64> {
        None
    }

    fn in_fast_recovery(&self) -> bool {
        self.phase == Phase::FastRecovery
    }

    fn dup_acks(&self) -> u32 {
        self.dup_acks
    }

    fn fast_retransmits(&self) -> u64 {
        self.fast_retransmits
    }

    fn timeout_retransmits(&self) -> u64 {
        self.timeout_retransmits
    }

    fn phase(&self) -> &'static str {
        match self.phase {
            Phase::FastRecovery => "fast_recovery",
            Phase::Open if self.cwnd < self.ssthresh => "slow_start",
            Phase::Open if f64::from(self.cwnd) < self.w_max => "concave",
            Phase::Open => "convex",
        }
    }

    fn algo(&self) -> CongestionAlgo {
        CongestionAlgo::Cubic
    }

    fn import(&mut self, snap: CongSnapshot) {
        self.cwnd = snap.cwnd.max(self.mss);
        self.ssthresh = snap.ssthresh.max(2 * self.mss);
        self.w_max = f64::from(self.cwnd);
        self.phase = Phase::Open;
        self.dup_acks = 0;
        self.epoch_start = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1460;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn slow_start_matches_reno() {
        let mut c = Cubic::new(MSS);
        assert_eq!(c.cwnd(), 2 * MSS);
        c.on_new_ack(at(0), 2 * MSS, MSS, None);
        c.on_new_ack(at(10), 2 * MSS, MSS, None);
        assert_eq!(c.cwnd(), 4 * MSS);
        assert_eq!(c.phase(), "slow_start");
    }

    #[test]
    fn regrows_toward_w_max_within_k() {
        let mut c = Cubic::new(MSS);
        // Build a large window, then lose.
        for _ in 0..100 {
            c.on_new_ack(at(0), 4 * MSS, MSS, Some(SimDuration::from_millis(50)));
        }
        let before = c.cwnd();
        for _ in 0..3 {
            c.on_dup_ack(before);
        }
        c.on_new_ack(at(100), before, MSS, Some(SimDuration::from_millis(50)));
        assert!(c.cwnd() < before, "loss must shrink the window");
        // Feed ACKs across simulated time: the cubic regrows to ≈W_max.
        let mut t = 100u64;
        for _ in 0..2000 {
            t += 5;
            c.on_new_ack(at(t), c.cwnd(), MSS, Some(SimDuration::from_millis(50)));
            if f64::from(c.cwnd()) >= c.w_max {
                break;
            }
        }
        assert!(
            f64::from(c.cwnd()) >= c.w_max * 0.95,
            "cwnd {} should approach w_max {}",
            c.cwnd(),
            c.w_max
        );
    }

    #[test]
    fn growth_is_time_dependent_not_ack_dependent() {
        // Two identical controllers regrowing toward a high plateau
        // (the concave region, where the cubic term dominates the
        // TCP-friendly estimate), same ACK count, different elapsed
        // time: the one further into the epoch must be larger.
        let build = || {
            let mut c = Cubic::new(MSS);
            // Slow-start to a large window, then a loss anchors W_max.
            for _ in 0..60 {
                c.on_new_ack(at(0), 4 * MSS, MSS, Some(SimDuration::from_millis(20)));
            }
            let flight = c.cwnd();
            for _ in 0..3 {
                c.on_dup_ack(flight);
            }
            // Exit recovery: cwnd deflates to ssthresh, epoch pending.
            c.on_new_ack(at(5), flight, MSS, Some(SimDuration::from_millis(20)));
            c
        };
        let mut slow = build();
        let mut fast = build();
        for i in 0..50u64 {
            slow.on_new_ack(at(10 + i), slow.cwnd(), MSS, Some(SimDuration::from_millis(20)));
            fast.on_new_ack(at(10 + i * 40), fast.cwnd(), MSS, Some(SimDuration::from_millis(20)));
        }
        assert!(
            fast.cwnd() > slow.cwnd(),
            "more elapsed time must mean more cubic growth ({} vs {})",
            fast.cwnd(),
            slow.cwnd()
        );
    }

    #[test]
    fn fast_convergence_lowers_w_max_on_repeat_loss() {
        let mut c = Cubic::new(MSS);
        for _ in 0..100 {
            c.on_new_ack(at(0), 4 * MSS, MSS, Some(SimDuration::from_millis(50)));
        }
        for _ in 0..3 {
            c.on_dup_ack(c.cwnd());
        }
        let w1 = c.w_max;
        c.on_new_ack(at(50), c.cwnd(), MSS, Some(SimDuration::from_millis(50)));
        // Second loss below the plateau: fast convergence shrinks w_max.
        for _ in 0..3 {
            c.on_dup_ack(c.cwnd());
        }
        assert!(c.w_max < w1, "w_max {} must drop below {}", c.w_max, w1);
    }

    #[test]
    fn idle_restart_caps_at_initial() {
        let mut c = Cubic::new(MSS);
        for _ in 0..20 {
            c.on_new_ack(at(0), 4 * MSS, MSS, None);
        }
        c.on_idle_restart();
        assert_eq!(c.cwnd(), 2 * MSS);
        c.on_timeout(8 * MSS);
        c.on_idle_restart();
        assert_eq!(c.cwnd(), MSS, "idle restart must not inflate a collapsed window");
    }
}
