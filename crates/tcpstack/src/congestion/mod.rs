//! Pluggable congestion control.
//!
//! The sender's recovery decisions are factored behind the
//! [`CongestionController`] trait: the TCB reports what happened (an ACK
//! advanced `snd_una`, a duplicate ACK arrived, the RTO fired, bytes
//! left the host) and reads back the two decision outputs — a window
//! ([`CongestionController::cwnd`]) and optionally a pacing rate
//! ([`CongestionController::pacing_rate`]). Three controllers implement
//! it:
//!
//! * [`Reno`] — RFC 5681 slow start / congestion avoidance / fast
//!   recovery, bit-for-bit the behaviour the pre-trait stack hardwired
//!   (the determinism digests pin this);
//! * [`Cubic`] — RFC 8312 window growth, RTT-independent probing for
//!   high-BDP paths;
//! * [`Bbr`] — a simplified model-based BBR: windowed max-bandwidth /
//!   min-RTT estimation, a probe-bw pacing-gain cycle, and periodic RTT
//!   probing; largely loss-indifferent.
//!
//! Dispatch is by enum ([`CongestionCtrl`]), not `Box<dyn>`: the TCB
//! stays `Clone` + allocation-free, and a connection's controller choice
//! ([`CongestionAlgo`]) serializes by name into scenario specs and chaos
//! plans so campaigns replay identically.

mod bbr;
mod cubic;
mod reno;

pub use bbr::Bbr;
pub use cubic::Cubic;
pub use reno::Reno;

use netsim::{SimDuration, SimTime};

/// Which congestion-control algorithm a connection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CongestionAlgo {
    /// RFC 5681 Reno (the default; matches the paper-era stack).
    #[default]
    Reno,
    /// RFC 8312 CUBIC.
    Cubic,
    /// Simplified model/probe-bw BBR.
    Bbr,
}

impl CongestionAlgo {
    /// Every algorithm, in serialization order.
    pub const ALL: [CongestionAlgo; 3] =
        [CongestionAlgo::Reno, CongestionAlgo::Cubic, CongestionAlgo::Bbr];

    /// Stable serialization name.
    pub const fn name(self) -> &'static str {
        match self {
            CongestionAlgo::Reno => "reno",
            CongestionAlgo::Cubic => "cubic",
            CongestionAlgo::Bbr => "bbr",
        }
    }

    /// Parses a [`CongestionAlgo::name`] back.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|a| a.name() == name)
    }
}

/// The controller state worth mirroring over the ST-TCP side channel so
/// a promoted backup resumes near the primary's operating point instead
/// of from the initial window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CongSnapshot {
    /// Congestion window in bytes.
    pub cwnd: u32,
    /// Slow-start threshold in bytes.
    pub ssthresh: u32,
}

/// One connection's congestion-control policy.
///
/// Inputs are events; outputs are `cwnd()` and `pacing_rate()`. The TCB
/// never mutates controller internals directly — counters are exposed as
/// read-only accessors.
pub trait CongestionController {
    /// An ACK advanced `snd_una`. `flight` is the bytes in flight before
    /// the ACK, `acked` the bytes it newly covered, `srtt` the current
    /// smoothed round-trip estimate (if any sample has arrived).
    fn on_new_ack(&mut self, now: SimTime, flight: u32, acked: u32, srtt: Option<SimDuration>);

    /// A duplicate ACK arrived. Returns `true` when the controller wants
    /// a fast retransmit (classically: the third duplicate).
    fn on_dup_ack(&mut self, flight: u32) -> bool;

    /// The retransmission timer fired.
    fn on_timeout(&mut self, flight: u32);

    /// `bytes` were handed to the wire (new data or retransmission).
    fn on_sent(&mut self, now: SimTime, bytes: u32);

    /// The connection restarted after an RTO-length idle. RFC 5681 §4.1:
    /// the window must come back *no larger than* the initial window —
    /// `min(initial, cwnd)`, never an increase.
    fn on_idle_restart(&mut self);

    /// Current congestion window in bytes.
    fn cwnd(&self) -> u32;

    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> u32;

    /// Pacing rate in bytes/second, for rate-based controllers. `None`
    /// means no pacing: the window alone gates transmission (Reno and
    /// CUBIC here).
    fn pacing_rate(&self) -> Option<u64>;

    /// True while in a loss-recovery episode.
    fn in_fast_recovery(&self) -> bool;

    /// Consecutive duplicate ACKs seen.
    fn dup_acks(&self) -> u32;

    /// Retransmissions this controller triggered via duplicate ACKs.
    fn fast_retransmits(&self) -> u64;

    /// Retransmissions triggered by the RTO timer.
    fn timeout_retransmits(&self) -> u64;

    /// The controller's current phase, for state-transition tracing
    /// (e.g. `"slow_start"`, `"avoidance"`, `"probe_bw"`).
    fn phase(&self) -> &'static str;

    /// Which algorithm this is.
    fn algo(&self) -> CongestionAlgo;

    /// Exports the mirrorable state (primary side of the shadow path).
    fn export(&self) -> CongSnapshot {
        CongSnapshot { cwnd: self.cwnd(), ssthresh: self.ssthresh() }
    }

    /// Adopts mirrored state from the primary (backup side). Values are
    /// clamped to sane bounds by the implementation.
    fn import(&mut self, snap: CongSnapshot);
}

/// Whether `idle` (time since last send) warrants a restart given the
/// current smoothed RTO (RFC 5681 §4.1).
pub fn idle_restart_due(idle: SimDuration, rto: SimDuration) -> bool {
    idle > rto
}

/// Enum dispatcher over the three controllers — the concrete type a TCB
/// holds. Keeps the TCB `Clone`/`Debug` without `dyn` indirection on the
/// default path: Reno (the paper-era default every fleet connection
/// runs) is inline, while the model-heavy CUBIC/BBR states are boxed so
/// they don't inflate every TCB — at 10 k connections the enum's size is
/// per-event cache footprint, and an unboxed BBR variant measurably
/// halves fleet event throughput.
#[derive(Debug, Clone)]
pub enum CongestionCtrl {
    /// RFC 5681 Reno.
    Reno(Reno),
    /// RFC 8312 CUBIC.
    Cubic(Box<Cubic>),
    /// Simplified BBR.
    Bbr(Box<Bbr>),
}

impl CongestionCtrl {
    /// Creates the controller `algo` selects, for a connection with the
    /// given MSS.
    pub fn new(algo: CongestionAlgo, mss: u32) -> Self {
        match algo {
            CongestionAlgo::Reno => CongestionCtrl::Reno(Reno::new(mss)),
            CongestionAlgo::Cubic => CongestionCtrl::Cubic(Box::new(Cubic::new(mss))),
            CongestionAlgo::Bbr => CongestionCtrl::Bbr(Box::new(Bbr::new(mss))),
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $c:ident => $body:expr) => {
        match $self {
            CongestionCtrl::Reno($c) => $body,
            CongestionCtrl::Cubic($c) => $body,
            CongestionCtrl::Bbr($c) => $body,
        }
    };
}

impl CongestionController for CongestionCtrl {
    fn on_new_ack(&mut self, now: SimTime, flight: u32, acked: u32, srtt: Option<SimDuration>) {
        dispatch!(self, c => c.on_new_ack(now, flight, acked, srtt))
    }
    fn on_dup_ack(&mut self, flight: u32) -> bool {
        dispatch!(self, c => c.on_dup_ack(flight))
    }
    fn on_timeout(&mut self, flight: u32) {
        dispatch!(self, c => c.on_timeout(flight))
    }
    fn on_sent(&mut self, now: SimTime, bytes: u32) {
        dispatch!(self, c => c.on_sent(now, bytes))
    }
    fn on_idle_restart(&mut self) {
        dispatch!(self, c => c.on_idle_restart())
    }
    fn cwnd(&self) -> u32 {
        dispatch!(self, c => c.cwnd())
    }
    fn ssthresh(&self) -> u32 {
        dispatch!(self, c => c.ssthresh())
    }
    fn pacing_rate(&self) -> Option<u64> {
        dispatch!(self, c => c.pacing_rate())
    }
    fn in_fast_recovery(&self) -> bool {
        dispatch!(self, c => c.in_fast_recovery())
    }
    fn dup_acks(&self) -> u32 {
        dispatch!(self, c => c.dup_acks())
    }
    fn fast_retransmits(&self) -> u64 {
        dispatch!(self, c => c.fast_retransmits())
    }
    fn timeout_retransmits(&self) -> u64 {
        dispatch!(self, c => c.timeout_retransmits())
    }
    fn phase(&self) -> &'static str {
        dispatch!(self, c => c.phase())
    }
    fn algo(&self) -> CongestionAlgo {
        dispatch!(self, c => c.algo())
    }
    fn import(&mut self, snap: CongSnapshot) {
        dispatch!(self, c => c.import(snap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1460;

    #[test]
    fn algo_names_roundtrip() {
        for a in CongestionAlgo::ALL {
            assert_eq!(CongestionAlgo::from_name(a.name()), Some(a));
        }
        assert_eq!(CongestionAlgo::from_name("vegas"), None);
        assert_eq!(CongestionAlgo::default(), CongestionAlgo::Reno);
    }

    #[test]
    fn dispatcher_builds_the_selected_algo() {
        for a in CongestionAlgo::ALL {
            let c = CongestionCtrl::new(a, MSS);
            assert_eq!(c.algo(), a);
            assert!(c.cwnd() >= 2 * MSS);
        }
    }

    #[test]
    fn export_import_roundtrips_window_state() {
        for a in CongestionAlgo::ALL {
            let mut src = CongestionCtrl::new(a, MSS);
            let t = SimTime::ZERO + SimDuration::from_millis(50);
            for _ in 0..24 {
                src.on_new_ack(t, 4 * MSS, MSS, Some(SimDuration::from_millis(10)));
            }
            let snap = src.export();
            let mut dst = CongestionCtrl::new(a, MSS);
            dst.import(snap);
            assert_eq!(dst.cwnd(), snap.cwnd, "{}", a.name());
        }
    }

    #[test]
    fn idle_restart_predicate() {
        let rto = SimDuration::from_millis(200);
        assert!(!idle_restart_due(SimDuration::from_millis(100), rto));
        assert!(!idle_restart_due(SimDuration::from_millis(200), rto));
        assert!(idle_restart_due(SimDuration::from_millis(201), rto));
    }
}
