//! TCP Reno congestion control (RFC 2581/5681).
//!
//! Slow start, congestion avoidance, fast retransmit / fast recovery,
//! and restart-after-idle. The evaluation LAN is never congestion-limited
//! (the ≈17 KB receive window binds first), but congestion control still
//! shapes the Interactive application's response latency: each burst
//! after an idle period restarts from the initial window, which is why a
//! 10 KB reply costs ≈2 round trips rather than one.
//!
//! This is the pre-trait `Congestion` struct verbatim — the window
//! arithmetic must stay bit-identical, since the determinism digests pin
//! the default stack's wire behaviour against the pre-refactor seed.

use super::{CongSnapshot, CongestionAlgo, CongestionController};
use netsim::{SimDuration, SimTime};

/// Why the sender entered recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Open,
    FastRecovery,
}

/// Reno congestion state for one connection.
#[derive(Debug, Clone)]
pub struct Reno {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    phase: Phase,
    dup_acks: u32,
    initial_cwnd: u32,
    fast_retransmits: u64,
    timeout_retransmits: u64,
}

impl Reno {
    /// Creates Reno state: initial window of 2 MSS; ssthresh starts
    /// "arbitrarily high" (RFC 5681 §3.1) so slow start runs until the
    /// first loss or the flow-control window binds.
    pub fn new(mss: u32) -> Self {
        let initial_cwnd = 2 * mss;
        Reno {
            mss,
            cwnd: initial_cwnd,
            ssthresh: u32::MAX,
            phase: Phase::Open,
            dup_acks: 0,
            initial_cwnd,
            fast_retransmits: 0,
            timeout_retransmits: 0,
        }
    }
}

impl CongestionController for Reno {
    fn on_new_ack(&mut self, _now: SimTime, _flight: u32, _acked: u32, _srtt: Option<SimDuration>) {
        self.dup_acks = 0;
        match self.phase {
            Phase::FastRecovery => {
                // Deflate back to ssthresh.
                self.cwnd = self.ssthresh;
                self.phase = Phase::Open;
            }
            Phase::Open => {
                if self.cwnd < self.ssthresh {
                    self.cwnd = self.cwnd.saturating_add(self.mss); // slow start
                } else {
                    // Congestion avoidance: ~1 MSS per RTT.
                    let inc = (u64::from(self.mss) * u64::from(self.mss)
                        / u64::from(self.cwnd.max(1)))
                    .max(1);
                    self.cwnd = self.cwnd.saturating_add(inc as u32);
                }
            }
        }
    }

    fn on_dup_ack(&mut self, flight: u32) -> bool {
        self.dup_acks += 1;
        match self.phase {
            Phase::Open if self.dup_acks == 3 => {
                self.ssthresh = (flight / 2).max(2 * self.mss);
                self.cwnd = self.ssthresh + 3 * self.mss;
                self.phase = Phase::FastRecovery;
                self.fast_retransmits += 1;
                true
            }
            Phase::FastRecovery => {
                // Window inflation: each dup ACK signals a departed segment.
                self.cwnd = self.cwnd.saturating_add(self.mss);
                false
            }
            _ => false,
        }
    }

    fn on_timeout(&mut self, flight: u32) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.mss; // loss window (RFC 5681 §3.1)
        self.phase = Phase::Open;
        self.dup_acks = 0;
        self.timeout_retransmits += 1;
    }

    fn on_sent(&mut self, _now: SimTime, _bytes: u32) {}

    fn on_idle_restart(&mut self) {
        // RFC 5681 §4.1: cwnd = min(IW, cwnd) — an idle restart must
        // never *grow* the window (a post-timeout 1-MSS window stays
        // collapsed; the pre-fix code bumped it back to the initial
        // window).
        self.cwnd = self.cwnd.min(self.initial_cwnd);
        self.phase = Phase::Open;
        self.dup_acks = 0;
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn pacing_rate(&self) -> Option<u64> {
        None
    }

    fn in_fast_recovery(&self) -> bool {
        self.phase == Phase::FastRecovery
    }

    fn dup_acks(&self) -> u32 {
        self.dup_acks
    }

    fn fast_retransmits(&self) -> u64 {
        self.fast_retransmits
    }

    fn timeout_retransmits(&self) -> u64 {
        self.timeout_retransmits
    }

    fn phase(&self) -> &'static str {
        match self.phase {
            Phase::FastRecovery => "fast_recovery",
            Phase::Open if self.cwnd < self.ssthresh => "slow_start",
            Phase::Open => "avoidance",
        }
    }

    fn algo(&self) -> CongestionAlgo {
        CongestionAlgo::Reno
    }

    fn import(&mut self, snap: CongSnapshot) {
        self.cwnd = snap.cwnd.max(self.mss);
        self.ssthresh = snap.ssthresh.max(2 * self.mss);
        self.phase = Phase::Open;
        self.dup_acks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1460;

    fn ack(c: &mut Reno, flight: u32) {
        c.on_new_ack(SimTime::ZERO, flight, MSS, None);
    }

    #[test]
    fn starts_with_two_segments() {
        let c = Reno::new(MSS);
        assert_eq!(c.cwnd(), 2 * MSS);
        assert!(!c.in_fast_recovery());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = Reno::new(MSS);
        // One RTT's worth of ACKs: 2 ACKs (one per segment) -> cwnd 4 MSS.
        ack(&mut c, 2 * MSS);
        ack(&mut c, 2 * MSS);
        assert_eq!(c.cwnd(), 4 * MSS);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut c = Reno::new(MSS);
        // A timeout sets a finite ssthresh; grow back into avoidance.
        c.on_timeout(64 * 1024);
        while c.cwnd() < c.ssthresh() {
            let w = c.cwnd();
            ack(&mut c, w);
        }
        let w = c.cwnd();
        // cwnd/MSS ACKs ≈ one RTT ≈ +1 MSS.
        let acks = w / MSS;
        for _ in 0..acks {
            ack(&mut c, w);
        }
        let grown = c.cwnd() - w;
        assert!((MSS - 100..=MSS + 100).contains(&grown), "grew {grown}, expected ≈MSS");
    }

    #[test]
    fn triple_dup_ack_enters_fast_recovery() {
        let mut c = Reno::new(MSS);
        let flight = 10 * MSS;
        assert!(!c.on_dup_ack(flight));
        assert!(!c.on_dup_ack(flight));
        assert!(c.on_dup_ack(flight), "third dup ACK must trigger fast retransmit");
        assert!(c.in_fast_recovery());
        assert_eq!(c.phase(), "fast_recovery");
        assert_eq!(c.ssthresh(), 5 * MSS);
        assert_eq!(c.cwnd(), 5 * MSS + 3 * MSS);
        assert_eq!(c.fast_retransmits(), 1);
        // Additional dup ACKs inflate.
        c.on_dup_ack(flight);
        assert_eq!(c.cwnd(), 9 * MSS);
        // New ACK deflates to ssthresh.
        ack(&mut c, flight);
        assert_eq!(c.cwnd(), 5 * MSS);
        assert!(!c.in_fast_recovery());
    }

    #[test]
    fn timeout_collapses_to_one_segment() {
        let mut c = Reno::new(MSS);
        for _ in 0..20 {
            ack(&mut c, 4 * MSS);
        }
        c.on_timeout(8 * MSS);
        assert_eq!(c.cwnd(), MSS);
        assert_eq!(c.ssthresh(), 4 * MSS);
        assert_eq!(c.timeout_retransmits(), 1);
    }

    #[test]
    fn idle_restart_caps_at_initial() {
        let mut c = Reno::new(MSS);
        for _ in 0..10 {
            ack(&mut c, 4 * MSS);
        }
        assert!(c.cwnd() > 2 * MSS);
        c.on_idle_restart();
        assert_eq!(c.cwnd(), 2 * MSS);
    }

    #[test]
    fn idle_restart_never_grows_a_collapsed_window() {
        // RFC 5681 §4.1: cwnd = min(IW, cwnd). After a timeout the
        // window is 1 MSS; an idle restart must leave it there, not
        // reset it up to the 2-MSS initial window.
        let mut c = Reno::new(MSS);
        for _ in 0..10 {
            ack(&mut c, 4 * MSS);
        }
        c.on_timeout(8 * MSS);
        assert_eq!(c.cwnd(), MSS);
        c.on_idle_restart();
        assert_eq!(c.cwnd(), MSS, "idle restart must not inflate cwnd");
    }

    #[test]
    fn dup_acks_below_three_do_nothing() {
        let mut c = Reno::new(MSS);
        let before = c.cwnd();
        c.on_dup_ack(5 * MSS);
        c.on_dup_ack(5 * MSS);
        assert_eq!(c.cwnd(), before);
        assert_eq!(c.dup_acks(), 2);
        ack(&mut c, 5 * MSS);
        assert_eq!(c.dup_acks(), 0);
    }

    #[test]
    fn phase_names_follow_state() {
        let mut c = Reno::new(MSS);
        assert_eq!(c.phase(), "slow_start");
        c.on_timeout(8 * MSS);
        while c.cwnd() < c.ssthresh() {
            let w = c.cwnd();
            ack(&mut c, w);
        }
        assert_eq!(c.phase(), "avoidance");
    }
}
