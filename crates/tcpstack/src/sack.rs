//! Sender-side SACK scoreboard (RFC 2018).
//!
//! The receiver's SACK options report isolated islands of received data
//! above the cumulative ACK. The sender records them here — a sorted set
//! of disjoint `[lo, hi)` ranges — and recovery consults the scoreboard
//! to retransmit *holes only*, instead of the go-back-N resend of the
//! whole outstanding window. RFC 2018's reneging rule applies: SACKed
//! ranges are advisory, so the scoreboard never releases send-buffer
//! bytes — only the cumulative ACK does that.

use crate::seq::SeqNum;

/// Sorted, disjoint set of peer-reported received ranges above the
/// cumulative ACK.
#[derive(Debug, Clone, Default)]
pub struct SackScoreboard {
    /// Disjoint, ascending (in sequence space relative to the trimmed
    /// window) `[lo, hi)` ranges.
    ranges: Vec<(SeqNum, SeqNum)>,
}

impl SackScoreboard {
    /// An empty scoreboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one SACK block `[lo, hi)`, merging overlaps/adjacency.
    /// Empty or inverted blocks are ignored (a malformed or stale option
    /// must not corrupt recovery).
    pub fn insert(&mut self, lo: SeqNum, hi: SeqNum) {
        if !lo.lt(hi) {
            return;
        }
        let mut lo = lo;
        let mut hi = hi;
        let mut i = 0;
        while i < self.ranges.len() {
            let (rlo, rhi) = self.ranges[i];
            if hi.lt(rlo) {
                break; // strictly before this range: insert here
            }
            if rhi.lt(lo) {
                i += 1; // strictly after this range: keep scanning
                continue;
            }
            // Overlapping or adjacent: absorb and keep scanning (the
            // merged range may now touch the next one).
            lo = lo.min(rlo);
            hi = hi.max(rhi);
            self.ranges.remove(i);
        }
        self.ranges.insert(i, (lo, hi));
    }

    /// The cumulative ACK advanced to `una`: drop everything below it.
    pub fn ack_to(&mut self, una: SeqNum) {
        self.ranges.retain_mut(|(lo, hi)| {
            if hi.le(una) {
                return false;
            }
            if lo.lt(una) {
                *lo = una;
            }
            true
        });
    }

    /// True if `seq` falls inside a SACKed range.
    pub fn is_sacked(&self, seq: SeqNum) -> bool {
        self.ranges.iter().any(|&(lo, hi)| seq.ge(lo) && seq.lt(hi))
    }

    /// If `seq` sits inside a SACKed range, the range's end (the next
    /// byte worth retransmitting); otherwise `seq` unchanged.
    pub fn skip_sacked(&self, seq: SeqNum) -> SeqNum {
        for &(lo, hi) in &self.ranges {
            if seq.ge(lo) && seq.lt(hi) {
                return hi;
            }
        }
        seq
    }

    /// Start of the first SACKed range strictly after `seq`, if any —
    /// the upper bound for a hole retransmission beginning at `seq`.
    pub fn next_sacked_after(&self, seq: SeqNum) -> Option<SeqNum> {
        self.ranges.iter().map(|&(lo, _)| lo).find(|lo| lo.gt(seq))
    }

    /// The recorded ranges (ascending, disjoint) — for tests and the
    /// shadow mirror.
    pub fn ranges(&self) -> &[(SeqNum, SeqNum)] {
        &self.ranges
    }

    /// True when nothing is SACKed.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Forgets everything (connection reset or controller import).
    pub fn clear(&mut self) {
        self.ranges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u32) -> SeqNum {
        SeqNum::new(v)
    }

    fn board(blocks: &[(u32, u32)]) -> SackScoreboard {
        let mut b = SackScoreboard::new();
        for &(lo, hi) in blocks {
            b.insert(s(lo), s(hi));
        }
        b
    }

    #[test]
    fn inserts_sorted_and_merges_overlaps() {
        let b = board(&[(300, 400), (100, 200), (150, 350)]);
        assert_eq!(b.ranges(), &[(s(100), s(400))]);
        let b = board(&[(100, 200), (300, 400)]);
        assert_eq!(b.ranges(), &[(s(100), s(200)), (s(300), s(400))]);
    }

    #[test]
    fn merges_adjacent_ranges() {
        let b = board(&[(100, 200), (200, 300)]);
        assert_eq!(b.ranges(), &[(s(100), s(300))]);
    }

    #[test]
    fn ignores_degenerate_blocks() {
        let b = board(&[(100, 100), (200, 150)]);
        assert!(b.is_empty());
    }

    #[test]
    fn ack_trims_below_una() {
        let mut b = board(&[(100, 200), (300, 400)]);
        b.ack_to(s(150));
        assert_eq!(b.ranges(), &[(s(150), s(200)), (s(300), s(400))]);
        b.ack_to(s(250));
        assert_eq!(b.ranges(), &[(s(300), s(400))]);
        b.ack_to(s(500));
        assert!(b.is_empty());
    }

    #[test]
    fn hole_navigation() {
        let b = board(&[(100, 200), (300, 400)]);
        assert!(!b.is_sacked(s(99)));
        assert!(b.is_sacked(s(100)));
        assert!(b.is_sacked(s(199)));
        assert!(!b.is_sacked(s(200)));
        assert_eq!(b.skip_sacked(s(150)), s(200));
        assert_eq!(b.skip_sacked(s(250)), s(250));
        assert_eq!(b.next_sacked_after(s(0)), Some(s(100)));
        assert_eq!(b.next_sacked_after(s(100)), Some(s(300)));
        assert_eq!(b.next_sacked_after(s(300)), None);
    }

    #[test]
    fn wraparound_sequence_space() {
        let lo = s(u32::MAX - 100);
        let hi = s(50); // wraps
        let mut b = SackScoreboard::new();
        b.insert(lo, hi);
        assert!(b.is_sacked(s(u32::MAX - 1)));
        assert!(b.is_sacked(s(10)));
        assert!(!b.is_sacked(s(50)));
        b.ack_to(s(20));
        assert_eq!(b.ranges(), &[(s(20), s(50))]);
    }
}
