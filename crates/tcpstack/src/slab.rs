//! Generation-tagged connection slab: O(1) insert/lookup/remove for
//! TCBs, the storage half of the connection-scale hot path.
//!
//! The stack used to keep connections in a `Vec<Option<Tcb>>`: inserting
//! scanned for the first free slot (O(n)) and a released index could be
//! handed out again while stale `SockId` copies were still in flight —
//! the classic ABA aliasing hazard. This slab fixes both:
//!
//! * **Intrusive free list** — vacant slots form a LIFO chain threaded
//!   through the slot array itself, so allocation pops the head in O(1)
//!   with no auxiliary storage and no scan.
//! * **Generation tags** — every slot carries a generation counter that
//!   is bumped on release. A [`SockId`] packs `(generation, index)` into
//!   one `u64`; a stale handle (older generation) simply stops resolving
//!   instead of silently aliasing whichever connection reused the slot.
//!
//! Iteration order over occupied slots is index order, which keeps every
//! consumer (frame emission, engine sweeps) fully deterministic no matter
//! in which order slots were freed and reused.

use crate::tcb::Tcb;
use netsim::SimTime;
use std::fmt;

/// Handle to a TCP connection owned by a `NetStack`.
///
/// Packs a slab index (low 32 bits) and a generation tag (high 32 bits)
/// into one `u64`. Handles are cheap to copy and safe to hold across a
/// connection's death: once the slot is released, the generation moves on
/// and the old handle resolves to `None` everywhere.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SockId(u64);

impl SockId {
    /// Rebuilds a handle from its raw `u64` form (see [`SockId::raw`]).
    pub fn from_raw(raw: u64) -> Self {
        SockId(raw)
    }

    /// The handle as a raw `u64` — stable, unique per (slot, generation),
    /// suitable as a timer token or map key in embedding layers.
    pub fn raw(self) -> u64 {
        self.0
    }

    pub(crate) fn new(index: u32, generation: u32) -> Self {
        SockId((u64::from(generation) << 32) | u64::from(index))
    }

    pub(crate) fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl fmt::Debug for SockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SockId({}v{})", self.index(), self.generation())
    }
}

/// Per-connection bookkeeping kept alongside the TCB in its slot.
pub(crate) struct Conn {
    /// The connection state machine itself.
    pub tcb: Tcb,
    /// Listening port whose accept queue still references this socket
    /// (cleared on accept), so release can unlink from exactly one queue.
    pub listen_port: Option<u16>,
    /// Earliest timer-wheel entry currently scheduled for this socket,
    /// or `None` when every scheduled entry has already popped.
    pub armed: Option<SimTime>,
    /// Whether the socket is already queued for the next poll pass.
    pub queued_poll: bool,
    /// Whether the socket is already queued on the embedder-visible
    /// activity list.
    pub queued_activity: bool,
}

impl Conn {
    pub(crate) fn new(tcb: Tcb) -> Self {
        Conn { tcb, listen_port: None, armed: None, queued_poll: false, queued_activity: false }
    }
}

// Storing `Conn` inline is the point of the slab: dense storage, no
// per-connection pointer chase. Vacant slots paying `Conn`'s footprint
// is the accepted trade.
#[allow(clippy::large_enum_variant)]
enum SlotState {
    /// Free slot; `next_free` is the index of the next vacant slot in the
    /// intrusive free list (`u32::MAX` terminates the chain).
    Vacant {
        next_free: u32,
    },
    Occupied(Conn),
}

struct Slot {
    generation: u32,
    state: SlotState,
}

const FREE_END: u32 = u32::MAX;

/// The connection slab. See the module docs.
pub(crate) struct TcbSlab {
    slots: Vec<Slot>,
    free_head: u32,
    live: usize,
}

impl TcbSlab {
    pub(crate) fn new() -> Self {
        TcbSlab { slots: Vec::new(), free_head: FREE_END, live: 0 }
    }

    /// Number of live connections.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// O(1) insert: pops the free-list head or appends a fresh slot.
    pub(crate) fn insert(&mut self, conn: Conn) -> SockId {
        self.live += 1;
        if self.free_head != FREE_END {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            match slot.state {
                SlotState::Vacant { next_free } => self.free_head = next_free,
                SlotState::Occupied(_) => unreachable!("free list points at an occupied slot"),
            }
            slot.state = SlotState::Occupied(conn);
            SockId::new(idx, slot.generation)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab capped at 2^32 slots");
            self.slots.push(Slot { generation: 1, state: SlotState::Occupied(conn) });
            SockId::new(idx, 1)
        }
    }

    /// O(1) remove: bumps the slot generation (invalidating every
    /// outstanding handle) and pushes the slot onto the free list.
    pub(crate) fn remove(&mut self, sock: SockId) -> Option<Conn> {
        let slot = self.slots.get_mut(sock.index())?;
        if slot.generation != sock.generation() || !matches!(slot.state, SlotState::Occupied(_)) {
            return None;
        }
        slot.generation = slot.generation.wrapping_add(1);
        let state =
            std::mem::replace(&mut slot.state, SlotState::Vacant { next_free: self.free_head });
        self.free_head = sock.index() as u32;
        self.live -= 1;
        match state {
            SlotState::Occupied(conn) => Some(conn),
            SlotState::Vacant { .. } => unreachable!("checked occupied above"),
        }
    }

    pub(crate) fn get(&self, sock: SockId) -> Option<&Conn> {
        match self.slots.get(sock.index()) {
            Some(Slot { generation, state: SlotState::Occupied(conn) })
                if *generation == sock.generation() =>
            {
                Some(conn)
            }
            _ => None,
        }
    }

    pub(crate) fn get_mut(&mut self, sock: SockId) -> Option<&mut Conn> {
        match self.slots.get_mut(sock.index()) {
            Some(Slot { generation, state: SlotState::Occupied(conn) })
                if *generation == sock.generation() =>
            {
                Some(conn)
            }
            _ => None,
        }
    }

    /// Occupied slots in index order (deterministic).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (SockId, &Conn)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, slot)| match &slot.state {
            SlotState::Occupied(conn) => Some((SockId::new(i as u32, slot.generation), conn)),
            SlotState::Vacant { .. } => None,
        })
    }

    /// Mutable variant of [`TcbSlab::iter`].
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = (SockId, &mut Conn)> + '_ {
        self.slots.iter_mut().enumerate().filter_map(|(i, slot)| match &mut slot.state {
            SlotState::Occupied(conn) => Some((SockId::new(i as u32, slot.generation), conn)),
            SlotState::Vacant { .. } => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Quad, TcpConfig};
    use crate::seq::SeqNum;
    use std::net::Ipv4Addr;

    fn conn(port: u16) -> Conn {
        let quad = Quad::new(Ipv4Addr::new(10, 0, 0, 1), port, Ipv4Addr::new(10, 0, 0, 2), 80);
        Conn::new(Tcb::connect(SimTime::ZERO, quad, SeqNum(1), TcpConfig::default()))
    }

    #[test]
    fn insert_reuses_freed_slot_with_new_generation() {
        let mut slab = TcbSlab::new();
        let a = slab.insert(conn(1000));
        let b = slab.insert(conn(1001));
        assert_eq!(slab.len(), 2);
        slab.remove(a).expect("live");
        assert_eq!(slab.len(), 1);
        let c = slab.insert(conn(1002));
        // LIFO free list: the freed slot is reused...
        assert_eq!(c.index(), a.index());
        // ...under a different generation, so handles stay distinct.
        assert_ne!(c, a);
        assert_ne!(c.raw(), a.raw());
        assert!(slab.get(a).is_none(), "stale handle must not resolve");
        assert!(slab.get(c).is_some());
        assert!(slab.get(b).is_some());
    }

    #[test]
    fn double_remove_is_none() {
        let mut slab = TcbSlab::new();
        let a = slab.insert(conn(1000));
        assert!(slab.remove(a).is_some());
        assert!(slab.remove(a).is_none());
        assert_eq!(slab.len(), 0);
    }

    #[test]
    fn iteration_is_index_ordered() {
        let mut slab = TcbSlab::new();
        let ids: Vec<SockId> = (0..5).map(|i| slab.insert(conn(1000 + i))).collect();
        slab.remove(ids[1]).unwrap();
        slab.remove(ids[3]).unwrap();
        // Free list is LIFO (3 then 1), but iteration stays index-sorted.
        let _d = slab.insert(conn(2000)); // reuses slot 3
        let order: Vec<usize> = slab.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(order, vec![0, 2, 3, 4]);
    }

    #[test]
    fn raw_roundtrip() {
        let mut slab = TcbSlab::new();
        let a = slab.insert(conn(1000));
        let back = SockId::from_raw(a.raw());
        assert_eq!(a, back);
        assert!(slab.get(back).is_some());
    }
}
