//! The send buffer: unacknowledged + unsent outbound bytes.

use crate::seq::SeqNum;
use std::collections::VecDeque;

/// A contiguous outbound byte queue anchored at `snd_una`.
///
/// Bytes enter via [`SendBuffer::write`] and leave when the peer's
/// cumulative ACK advances past them ([`SendBuffer::ack_to`]). The TCB
/// reads transmission windows out of the middle with
/// [`SendBuffer::copy_range`]; nothing is removed until acknowledged, so
/// retransmission is always possible.
#[derive(Debug, Clone)]
pub struct SendBuffer {
    base: SeqNum,
    data: VecDeque<u8>,
    capacity: usize,
}

impl SendBuffer {
    /// Creates an empty buffer whose first byte will carry seq `base`.
    pub fn new(base: SeqNum, capacity: usize) -> Self {
        SendBuffer { base, data: VecDeque::new(), capacity }
    }

    /// Sequence number of the first unacknowledged byte.
    pub fn base(&self) -> SeqNum {
        self.base
    }

    /// Sequence number one past the last buffered byte.
    pub fn end(&self) -> SeqNum {
        self.base.add(self.data.len() as u32)
    }

    /// Bytes currently buffered (sent-unacked plus unsent).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Space left for the application.
    pub fn free_space(&self) -> usize {
        self.capacity - self.data.len()
    }

    /// Rebases the sequence space (ST-TCP backup ISN resynchronization,
    /// paper §4.1 step 3).
    ///
    /// # Panics
    ///
    /// Panics if data is already buffered — resync happens during the
    /// handshake, before any payload exists.
    pub fn rebase(&mut self, base: SeqNum) {
        assert!(self.data.is_empty(), "cannot rebase a non-empty send buffer");
        self.base = base;
    }

    /// Appends as much of `data` as fits; returns the number accepted.
    pub fn write(&mut self, data: &[u8]) -> usize {
        let n = data.len().min(self.free_space());
        self.data.extend(&data[..n]);
        n
    }

    /// Borrows up to `len` bytes starting at `seq` as the (at most two)
    /// contiguous halves of the ring — the zero-copy counterpart of
    /// [`SendBuffer::copy_range`]. Either slice may be empty. Returns
    /// `None` if `seq` is outside the buffered range.
    ///
    /// The caller writes these straight into the frame builder, so a
    /// transmitted payload costs exactly one memcpy end-to-end.
    pub fn slices_range(&self, seq: SeqNum, len: usize) -> Option<(&[u8], &[u8])> {
        if !seq.ge(self.base) || !seq.le(self.end()) {
            return None;
        }
        let off = seq.distance(self.base) as usize;
        let n = len.min(self.data.len() - off);
        let (front, back) = self.data.as_slices();
        if off < front.len() {
            let a = &front[off..front.len().min(off + n)];
            let b = &back[..n - a.len()];
            Some((a, b))
        } else {
            Some((&back[off - front.len()..off - front.len() + n], &[]))
        }
    }

    /// Copies up to `len` bytes starting at `seq` into a fresh vector.
    /// Returns `None` if `seq` is outside the buffered range.
    pub fn copy_range(&self, seq: SeqNum, len: usize) -> Option<Vec<u8>> {
        self.slices_range(seq, len).map(|(a, b)| {
            let mut v = Vec::with_capacity(a.len() + b.len());
            v.extend_from_slice(a);
            v.extend_from_slice(b);
            v
        })
    }

    /// Advances `snd_una` to `new_base`, discarding acknowledged bytes.
    /// Returns how many bytes were released. ACKs below the current base
    /// or beyond buffered data release nothing beyond the valid range.
    pub fn ack_to(&mut self, new_base: SeqNum) -> usize {
        let target = new_base.min(self.end());
        if !target.gt(self.base) {
            return 0;
        }
        let n = target.distance(self.base) as usize;
        self.data.drain(..n);
        self.base = target;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_ack_cycle() {
        let mut b = SendBuffer::new(SeqNum(1000), 10);
        assert_eq!(b.write(b"hello"), 5);
        assert_eq!(b.write(b"world!"), 5, "only capacity remains");
        assert_eq!(b.len(), 10);
        assert_eq!(b.free_space(), 0);
        assert_eq!(b.end(), SeqNum(1010));
        assert_eq!(b.ack_to(SeqNum(1003)), 3);
        assert_eq!(b.base(), SeqNum(1003));
        assert_eq!(b.free_space(), 3);
        assert_eq!(b.copy_range(SeqNum(1003), 7).unwrap(), b"loworld");
    }

    #[test]
    fn copy_range_mid_buffer() {
        let mut b = SendBuffer::new(SeqNum(0), 100);
        b.write(b"abcdefghij");
        assert_eq!(b.copy_range(SeqNum(3), 4).unwrap(), b"defg");
        assert_eq!(b.copy_range(SeqNum(8), 100).unwrap(), b"ij");
        assert_eq!(b.copy_range(SeqNum(10), 5).unwrap(), b"", "end is valid, empty");
        assert_eq!(b.copy_range(SeqNum(11), 1), None);
    }

    #[test]
    fn slices_range_matches_copy_range_across_the_seam() {
        // Churn the deque so its ring head walks past the physical end
        // and slices_range has to return two non-empty halves.
        let mut b = SendBuffer::new(SeqNum(0), 16);
        let mut next = 0u8;
        let mut seam_seen = false;
        // Keep a residue buffered: a fully drained VecDeque may reset its
        // ring head, which would keep the storage contiguous forever.
        assert_eq!(b.write(b"\xAA\xBB\xCC"), 3);
        for _ in 0..40 {
            let chunk: Vec<u8> = (0..6)
                .map(|_| {
                    next = next.wrapping_add(1);
                    next
                })
                .collect();
            assert_eq!(b.write(&chunk), 6);
            for off in 0..=b.len() {
                let seq = b.base().add(off as u32);
                for len in [0usize, 1, 4, 16] {
                    let (x, y) = b.slices_range(seq, len).unwrap();
                    seam_seen |= !x.is_empty() && !y.is_empty();
                    assert_eq!([x, y].concat(), b.copy_range(seq, len).unwrap());
                }
            }
            b.ack_to(b.base().add(6));
        }
        assert!(seam_seen, "test never exercised the wrapped two-slice case");
        assert_eq!(b.slices_range(b.end().add(1), 1), None);
    }

    #[test]
    fn stale_and_overshooting_acks() {
        let mut b = SendBuffer::new(SeqNum(100), 50);
        b.write(b"0123456789");
        assert_eq!(b.ack_to(SeqNum(95)), 0, "stale ack ignored");
        assert_eq!(b.ack_to(SeqNum(200)), 10, "overshoot clamps to end");
        assert_eq!(b.base(), SeqNum(110));
        assert!(b.is_empty());
    }

    #[test]
    fn rebase_shifts_sequence_space() {
        let mut b = SendBuffer::new(SeqNum(5), 10);
        b.rebase(SeqNum(99999));
        b.write(b"x");
        assert_eq!(b.base(), SeqNum(99999));
        assert_eq!(b.end(), SeqNum(100000));
    }

    #[test]
    #[should_panic(expected = "cannot rebase")]
    fn rebase_with_data_panics() {
        let mut b = SendBuffer::new(SeqNum(5), 10);
        b.write(b"x");
        b.rebase(SeqNum(0));
    }

    #[test]
    fn wraparound_sequence_space() {
        let mut b = SendBuffer::new(SeqNum(u32::MAX - 2), 100);
        b.write(b"abcdef");
        assert_eq!(b.end(), SeqNum(3));
        assert_eq!(b.copy_range(SeqNum(u32::MAX), 3).unwrap(), b"cde");
        // Acking up to seq 1 covers MAX-2, MAX-1, MAX, 0 — four bytes.
        assert_eq!(b.ack_to(SeqNum(1)), 4, "ack across the wrap");
        assert_eq!(b.base(), SeqNum(1));
        assert_eq!(b.len(), 2);
    }
}
