//! Wrapping 32-bit TCP sequence-number arithmetic (RFC 793 §3.3).
//!
//! Sequence numbers live on a circle of 2³² values; "less than" is only
//! meaningful for values within 2³¹ of each other, which TCP's window
//! rules guarantee. ST-TCP leans on this arithmetic twice over: the
//! backup must *resynchronize its ISN* to the primary's (paper §4.1) and
//! the primary's retention buffer is managed by comparing the backup's
//! `LastByteAcked` against `LastByteRead` (§4.2).

use std::fmt;

/// A TCP sequence number.
///
/// ```
/// use tcpstack::SeqNum;
///
/// let near_wrap = SeqNum::new(u32::MAX - 1);
/// let after = near_wrap.add(10); // crosses 2^32
/// assert!(near_wrap.lt(after));
/// assert_eq!(after.distance(near_wrap), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// Constructs from the raw wire value.
    pub const fn new(v: u32) -> Self {
        SeqNum(v)
    }

    /// The raw wire value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// `self + n` on the sequence circle.
    #[must_use]
    pub const fn add(self, n: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(n))
    }

    /// `self - n` on the sequence circle.
    #[must_use]
    pub const fn sub(self, n: u32) -> SeqNum {
        SeqNum(self.0.wrapping_sub(n))
    }

    /// Signed circular distance `self - other`, valid when the true
    /// distance is within ±2³¹.
    pub const fn distance(self, other: SeqNum) -> i64 {
        self.0.wrapping_sub(other.0) as i32 as i64
    }

    /// `self < other` in circular order.
    pub const fn lt(self, other: SeqNum) -> bool {
        self.distance(other) < 0
    }

    /// `self <= other` in circular order.
    pub const fn le(self, other: SeqNum) -> bool {
        self.distance(other) <= 0
    }

    /// `self > other` in circular order.
    pub const fn gt(self, other: SeqNum) -> bool {
        self.distance(other) > 0
    }

    /// `self >= other` in circular order.
    pub const fn ge(self, other: SeqNum) -> bool {
        self.distance(other) >= 0
    }

    /// True when `low <= self < high` in circular order.
    pub const fn in_range(self, low: SeqNum, high: SeqNum) -> bool {
        low.le(self) && self.lt(high)
    }

    /// The larger of two sequence numbers in circular order.
    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.ge(other) {
            self
        } else {
            other
        }
    }

    /// The smaller of two sequence numbers in circular order.
    pub fn min(self, other: SeqNum) -> SeqNum {
        if self.le(other) {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for SeqNum {
    fn from(v: u32) -> Self {
        SeqNum(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        let a = SeqNum(100);
        let b = SeqNum(200);
        assert!(a.lt(b) && a.le(b) && b.gt(a) && b.ge(a));
        assert!(a.le(a) && a.ge(a) && !a.lt(a) && !a.gt(a));
    }

    #[test]
    fn wraparound_ordering() {
        // 2^32 - 10 is "before" 10 across the wrap.
        let near_wrap = SeqNum(u32::MAX - 9);
        let after_wrap = SeqNum(10);
        assert!(near_wrap.lt(after_wrap));
        assert!(after_wrap.gt(near_wrap));
        assert_eq!(after_wrap.distance(near_wrap), 20);
        assert_eq!(near_wrap.distance(after_wrap), -20);
    }

    #[test]
    fn add_sub_roundtrip() {
        let s = SeqNum(u32::MAX - 5);
        assert_eq!(s.add(10), SeqNum(4));
        assert_eq!(s.add(10).sub(10), s);
    }

    #[test]
    fn in_range_straddles_wrap() {
        let low = SeqNum(u32::MAX - 2);
        let high = SeqNum(3);
        assert!(SeqNum(u32::MAX).in_range(low, high));
        assert!(SeqNum(0).in_range(low, high));
        assert!(SeqNum(2).in_range(low, high));
        assert!(!SeqNum(3).in_range(low, high));
        assert!(!SeqNum(100).in_range(low, high));
    }

    #[test]
    fn min_max() {
        let a = SeqNum(u32::MAX);
        let b = SeqNum(5); // after wrap, b > a
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
