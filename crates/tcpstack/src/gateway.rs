//! A two-interface IP gateway (sans-io).
//!
//! The paper's clients reach the LAN "by one or more gateways" (§3.1),
//! and the gateway is where the static `SVI → SME` ARP entry lives: it
//! rewrites the destination MAC of client→service packets to the
//! multicast `SME`, making the switch flood them to the backup's tap.
//! Symmetrically, the server reaches clients through the gateway's
//! virtual IP `GVI`, whose multicast `GME` floods server→client traffic.
//!
//! This is a plain IPv4 forwarder: no NAT, no firewall, TTL decremented,
//! packets with exhausted TTL dropped. Frames in on one side come out on
//! the other with rewritten Ethernet headers.

use crate::arp_cache::ArpCache;
use bytes::Bytes;
use std::collections::VecDeque;
use std::net::Ipv4Addr;
use wire::{ArpOp, ArpPacket, EtherType, EthernetFrame, Ipv4Packet, MacAddr};

/// Which of the gateway's two interfaces a frame touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Interface 0 (conventionally the client side).
    A,
    /// Interface 1 (conventionally the server LAN side).
    B,
}

impl Side {
    /// The opposite interface.
    #[must_use]
    pub fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }

    /// Index form (A=0, B=1).
    pub fn index(self) -> usize {
        match self {
            Side::A => 0,
            Side::B => 1,
        }
    }
}

/// Configuration of one gateway interface.
#[derive(Debug, Clone)]
pub struct GatewayIface {
    /// Interface MAC.
    pub mac: MacAddr,
    /// Interface IP (clients/servers use it as their default gateway).
    pub ip: Ipv4Addr,
    /// Subnet prefix length.
    pub netmask_bits: u8,
}

impl GatewayIface {
    fn on_subnet(&self, dst: Ipv4Addr) -> bool {
        let bits = u32::from(self.netmask_bits.min(32));
        let mask = if bits == 0 { 0 } else { u32::MAX << (32 - bits) };
        (u32::from(self.ip) & mask) == (u32::from(dst) & mask)
    }
}

/// Counters for the gateway.
#[derive(Debug, Clone, Copy, Default)]
pub struct GatewayStats {
    /// Packets forwarded A→B or B→A.
    pub forwarded: u64,
    /// Packets dropped: TTL exhausted.
    pub ttl_drops: u64,
    /// Packets dropped: no route (neither subnet).
    pub no_route: u64,
    /// Packets dropped: next-hop MAC unresolved.
    pub unresolved: u64,
}

/// A sans-io two-interface IPv4 gateway.
///
/// Feed frames with [`Gateway::handle_frame`]; collect output with
/// [`Gateway::poll`]. The ST-TCP node adapters wire it into the
/// simulator.
#[derive(Debug)]
pub struct Gateway {
    ifaces: [GatewayIface; 2],
    arp: [ArpCache; 2],
    out: VecDeque<(Side, Bytes)>,
    /// Counters.
    pub stats: GatewayStats,
}

impl Gateway {
    /// Builds a gateway. `static_arp` entries are installed per side —
    /// side B conventionally carries `(SVI, SME)` so client→service
    /// packets egress with the multicast destination the backup taps.
    pub fn new(
        a: GatewayIface,
        b: GatewayIface,
        static_arp_a: impl IntoIterator<Item = (Ipv4Addr, MacAddr)>,
        static_arp_b: impl IntoIterator<Item = (Ipv4Addr, MacAddr)>,
    ) -> Self {
        Gateway {
            ifaces: [a, b],
            arp: [ArpCache::new(static_arp_a), ArpCache::new(static_arp_b)],
            out: VecDeque::new(),
            stats: GatewayStats::default(),
        }
    }

    /// Processes a frame received on `side`.
    pub fn handle_frame(&mut self, side: Side, raw: Bytes) {
        let Ok(eth) = EthernetFrame::parse(raw) else {
            return;
        };
        let iface = &self.ifaces[side.index()];
        let for_us = eth.dst == iface.mac || eth.dst.is_broadcast() || eth.dst.is_multicast();
        if !for_us {
            return;
        }
        match eth.ethertype {
            EtherType::Arp => self.handle_arp(side, &eth),
            EtherType::Ipv4 => self.handle_ip(side, &eth),
            EtherType::Other(_) => {}
        }
    }

    fn handle_arp(&mut self, side: Side, eth: &EthernetFrame) {
        let Ok(arp) = ArpPacket::parse(&eth.payload) else {
            return;
        };
        self.arp[side.index()].learn(arp.sender_ip, arp.sender_mac);
        let iface = &self.ifaces[side.index()];
        if arp.op == ArpOp::Request && arp.target_ip == iface.ip {
            let reply = ArpPacket::reply(iface.mac, iface.ip, &arp);
            let frame =
                EthernetFrame::new(arp.sender_mac, iface.mac, EtherType::Arp, reply.encode());
            self.out.push_back((side, frame.encode()));
        }
    }

    fn handle_ip(&mut self, side: Side, eth: &EthernetFrame) {
        let Ok(mut packet) = Ipv4Packet::parse(eth.payload.clone()) else {
            return;
        };
        // Learn the sender on the ingress side.
        if !eth.src.is_multicast() {
            self.arp[side.index()].learn(packet.src, eth.src);
        }
        // Packets addressed to the gateway itself are sunk (no services).
        if self.ifaces.iter().any(|i| i.ip == packet.dst) {
            return;
        }
        if packet.ttl <= 1 {
            self.stats.ttl_drops += 1;
            return;
        }
        packet.ttl -= 1;
        // Route: pick the interface whose subnet holds the destination.
        let egress = if self.ifaces[side.other().index()].on_subnet(packet.dst) {
            side.other()
        } else if self.ifaces[side.index()].on_subnet(packet.dst) {
            side // hairpin
        } else {
            self.stats.no_route += 1;
            return;
        };
        let Some(dst_mac) = self.arp[egress.index()].lookup(packet.dst) else {
            // A production router would ARP-and-queue; the experiment
            // topologies pre-install every needed entry, so an
            // unresolved hop is a configuration bug worth surfacing.
            self.stats.unresolved += 1;
            return;
        };
        let iface = &self.ifaces[egress.index()];
        let frame = EthernetFrame::new(dst_mac, iface.mac, EtherType::Ipv4, packet.encode());
        self.stats.forwarded += 1;
        self.out.push_back((egress, frame.encode()));
    }

    /// Collects frames to transmit as `(side, frame)` pairs.
    pub fn poll(&mut self) -> Vec<(Side, Bytes)> {
        self.out.drain(..).collect()
    }

    /// Installs a static ARP entry on one side after construction.
    pub fn insert_static_arp(&mut self, side: Side, ip: Ipv4Addr, mac: MacAddr) {
        self.arp[side.index()].insert_static(ip, mac);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::IpProtocol;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);
    const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);
    const GW_A: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 1);
    const GW_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    fn gateway() -> Gateway {
        let sme = MacAddr::multicast_for_ip(VIP);
        Gateway::new(
            GatewayIface { mac: MacAddr::local(10), ip: GW_A, netmask_bits: 24 },
            GatewayIface { mac: MacAddr::local(11), ip: GW_B, netmask_bits: 24 },
            [],
            [(VIP, sme)], // the paper's static SVI→SME entry
        )
    }

    fn client_to_vip_frame() -> Bytes {
        let ip = Ipv4Packet::new(CLIENT, VIP, IpProtocol::Tcp, Bytes::from_static(b"seg"));
        EthernetFrame::new(MacAddr::local(10), MacAddr::local(1), EtherType::Ipv4, ip.encode())
            .encode()
    }

    #[test]
    fn forwards_with_multicast_rewrite() {
        let mut gw = gateway();
        gw.handle_frame(Side::A, client_to_vip_frame());
        let out = gw.poll();
        assert_eq!(out.len(), 1);
        let (side, frame) = &out[0];
        assert_eq!(*side, Side::B);
        let eth = EthernetFrame::parse(frame.clone()).unwrap();
        assert_eq!(eth.dst, MacAddr::multicast_for_ip(VIP), "static ARP rewrites to SME");
        assert_eq!(eth.src, MacAddr::local(11));
        let ip = Ipv4Packet::parse(eth.payload).unwrap();
        assert_eq!(ip.ttl, 63, "TTL decremented");
        assert_eq!(ip.dst, VIP);
    }

    #[test]
    fn replies_to_arp_for_own_ip() {
        let mut gw = gateway();
        let req = ArpPacket::request(MacAddr::local(1), CLIENT, GW_A);
        let frame =
            EthernetFrame::new(MacAddr::BROADCAST, MacAddr::local(1), EtherType::Arp, req.encode());
        gw.handle_frame(Side::A, frame.encode());
        let out = gw.poll();
        assert_eq!(out.len(), 1);
        let eth = EthernetFrame::parse(out[0].1.clone()).unwrap();
        let arp = ArpPacket::parse(&eth.payload).unwrap();
        assert_eq!(arp.op, ArpOp::Reply);
        assert_eq!(arp.sender_mac, MacAddr::local(10));
    }

    #[test]
    fn reverse_path_uses_learned_mac() {
        let mut gw = gateway();
        // The client's frame teaches side A the client MAC.
        gw.handle_frame(Side::A, client_to_vip_frame());
        gw.poll();
        // Server (VIP) responds toward the client.
        let ip = Ipv4Packet::new(VIP, CLIENT, IpProtocol::Tcp, Bytes::from_static(b"resp"));
        let f =
            EthernetFrame::new(MacAddr::local(11), MacAddr::local(5), EtherType::Ipv4, ip.encode());
        gw.handle_frame(Side::B, f.encode());
        let out = gw.poll();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Side::A);
        let eth = EthernetFrame::parse(out[0].1.clone()).unwrap();
        assert_eq!(eth.dst, MacAddr::local(1), "learned from the earlier client frame");
    }

    #[test]
    fn ttl_exhaustion_drops() {
        let mut gw = gateway();
        let mut ip = Ipv4Packet::new(CLIENT, VIP, IpProtocol::Tcp, Bytes::new());
        ip.ttl = 1;
        let f =
            EthernetFrame::new(MacAddr::local(10), MacAddr::local(1), EtherType::Ipv4, ip.encode());
        gw.handle_frame(Side::A, f.encode());
        assert!(gw.poll().is_empty());
        assert_eq!(gw.stats.ttl_drops, 1);
    }

    #[test]
    fn no_route_counts() {
        let mut gw = gateway();
        let ip =
            Ipv4Packet::new(CLIENT, Ipv4Addr::new(172, 16, 0, 1), IpProtocol::Tcp, Bytes::new());
        let f =
            EthernetFrame::new(MacAddr::local(10), MacAddr::local(1), EtherType::Ipv4, ip.encode());
        gw.handle_frame(Side::A, f.encode());
        assert!(gw.poll().is_empty());
        assert_eq!(gw.stats.no_route, 1);
    }

    #[test]
    fn packets_to_gateway_itself_are_sunk() {
        let mut gw = gateway();
        let ip = Ipv4Packet::new(CLIENT, GW_A, IpProtocol::Udp, Bytes::from_static(b"hi"));
        let f =
            EthernetFrame::new(MacAddr::local(10), MacAddr::local(1), EtherType::Ipv4, ip.encode());
        gw.handle_frame(Side::A, f.encode());
        assert!(gw.poll().is_empty());
        assert_eq!(gw.stats.forwarded, 0);
    }
}
