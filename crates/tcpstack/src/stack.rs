//! [`NetStack`]: one host's network stack (Ethernet/ARP/IPv4/TCP/UDP).
//!
//! Sans-io: raw frames go in through [`NetStack::handle_frame`], raw
//! frames come out of [`NetStack::poll`], and [`NetStack::next_deadline`]
//! tells the embedding when to call back. The `sttcp` crate builds the
//! primary/backup/client simulation nodes on top of this.
//!
//! ST-TCP specifics handled at this layer:
//!
//! * **NIC filtering for tapping** — accepts frames for the configured
//!   multicast MACs (`SME`/`GME`) or everything in promiscuous mode;
//! * **egress suppression** — frames sourced from a suppressed IP (the
//!   backup's copy of the service VIP) are generated and then dropped,
//!   which is precisely the paper's "replies from the backup server to
//!   the client are dropped" (§4.2), and ARP replies for a suppressed
//!   IP are never sent;
//! * **MAC learning from tapped IP traffic** — so the backup can address
//!   the client the instant it takes over.

use crate::arp_cache::ArpCache;
use crate::config::{Quad, StackConfig};
use crate::seq::SeqNum;
use crate::slab::{Conn, TcbSlab};
use crate::tcb::{StagedSeg, Tcb, TcpState};
use crate::twheel::TimerWheel;
use crate::udp_socket::{UdpRecv, UdpSocket};
use bytes::Bytes;
use netsim::{SimDuration, SimTime, SplitMix64};
use obs::{Counter, Mark, SharedRecorder, TraceEvent};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::net::Ipv4Addr;
use wire::{
    ArpOp, ArpPacket, EtherType, EthernetFrame, FrameBuilder, IpProtocol, Ipv4Packet, MacAddr,
    TcpFlags, TcpFrameHeader, TcpSegment, UdpDatagram,
};

pub use crate::slab::SockId;

/// Handle to a UDP socket owned by a [`NetStack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpId(pub usize);

/// Errors returned by socket operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackError {
    /// The handle does not refer to a live socket.
    BadSocket,
    /// The operation is invalid in the connection's current state.
    BadState,
    /// No ephemeral port was available.
    NoPorts,
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::BadSocket => write!(f, "no such socket"),
            StackError::BadState => write!(f, "operation invalid in current state"),
            StackError::NoPorts => write!(f, "ephemeral ports exhausted"),
        }
    }
}

impl std::error::Error for StackError {}

/// Stack-level counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackStats {
    /// Frames handed to the stack.
    pub frames_in: u64,
    /// Frames that passed the NIC filter.
    pub frames_accepted: u64,
    /// Frames rejected by the NIC filter.
    pub frames_filtered: u64,
    /// Frames/packets that failed to parse or checksum.
    pub parse_errors: u64,
    /// Frames emitted.
    pub frames_out: u64,
    /// TCP segments suppressed by egress suppression.
    pub segs_suppressed: u64,
    /// ARP replies withheld because the IP is suppressed.
    pub arps_suppressed: u64,
    /// RSTs sent for segments with no matching connection.
    pub rsts_sent: u64,
    /// IP packets dropped awaiting ARP resolution that never completed.
    pub arp_queue_drops: u64,
}

const ARP_RETRY: SimDuration = SimDuration::from_secs(1);
const ARP_MAX_TRIES: u32 = 3;
const EPHEMERAL_BASE: u16 = 40000;

struct ArpPending {
    last_request: SimTime,
    tries: u32,
    queued: Vec<Ipv4Packet>,
}

/// One host's network stack. See the module docs.
pub struct NetStack {
    cfg: StackConfig,
    arp: ArpCache,
    /// Connection storage: generation-tagged slab, O(1) insert/remove.
    tcbs: TcbSlab,
    /// Quad demux for established/handshaking connections.
    by_quad: HashMap<Quad, SockId>,
    /// Listener-port table: accept backlog per listening port.
    listeners: HashMap<u16, Vec<SockId>>,
    udps: Vec<UdpSocket>,
    /// UDP demux: destination port → `udps` index (first bind wins).
    udp_ports: HashMap<u16, usize>,
    /// Connection-deadline wake index (tokens are raw [`SockId`]s).
    wheel: TimerWheel<u64>,
    /// Scratch for wheel pops (capacity reused across polls).
    wheel_expired: Vec<u64>,
    /// Sockets with potential work for the next poll pass. Deduplicated
    /// via `Conn::queued_poll`; drained by [`NetStack::poll_into`].
    poll_queue: Vec<SockId>,
    /// Sockets touched since the embedder last drained activity
    /// (see [`NetStack::drain_activity`]). Only fed when enabled.
    activity: Vec<SockId>,
    activity_tracking: bool,
    out: VecDeque<Bytes>,
    builder: FrameBuilder,
    pending_arp: HashMap<Ipv4Addr, ArpPending>,
    suppressed: HashSet<Ipv4Addr>,
    recorder: SharedRecorder,
    /// Armed by [`NetStack::unsuppress`]: the next *data* segment to
    /// leave the stack stamps the first-post-takeover-byte mark.
    takeover_watch: bool,
    isn_rng: SplitMix64,
    ip_ident: u16,
    next_ephemeral: u16,
    /// Counters.
    pub stats: StackStats,
}

impl fmt::Debug for NetStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetStack")
            .field("ip", &self.cfg.ip)
            .field("tcbs", &self.tcbs.len())
            .field("listeners", &self.listeners.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl NetStack {
    /// Builds a stack from its configuration.
    pub fn new(cfg: StackConfig) -> Self {
        let arp = ArpCache::new(cfg.static_arp.iter().copied());
        let suppressed = cfg.suppressed_ips.iter().copied().collect();
        let isn_rng = SplitMix64::new(cfg.isn_seed);
        NetStack {
            arp,
            suppressed,
            recorder: obs::nop(),
            takeover_watch: false,
            isn_rng,
            tcbs: TcbSlab::new(),
            by_quad: HashMap::new(),
            listeners: HashMap::new(),
            udps: Vec::new(),
            udp_ports: HashMap::new(),
            wheel: TimerWheel::new(),
            wheel_expired: Vec::with_capacity(32),
            poll_queue: Vec::with_capacity(32),
            activity: Vec::new(),
            activity_tracking: false,
            out: VecDeque::new(),
            builder: FrameBuilder::new(),
            pending_arp: HashMap::new(),
            ip_ident: 0,
            next_ephemeral: EPHEMERAL_BASE,
            stats: StackStats::default(),
            cfg,
        }
    }

    /// Queues `sock` for the next poll pass (and on the embedder's
    /// activity list when tracking is enabled). Idempotent per pass;
    /// a dead handle is a no-op.
    fn mark_dirty(&mut self, sock: SockId) {
        let track = self.activity_tracking;
        if let Some(conn) = self.tcbs.get_mut(sock) {
            if !conn.queued_poll {
                conn.queued_poll = true;
                self.poll_queue.push(sock);
            }
            if track && !conn.queued_activity {
                conn.queued_activity = true;
                self.activity.push(sock);
            }
        }
    }

    /// Enables per-socket activity tracking: every socket touched by
    /// ingress, timers, or API calls is reported (once) through
    /// [`NetStack::drain_activity`]. Off by default — single-connection
    /// embedders don't pay for the list.
    pub fn set_activity_tracking(&mut self, on: bool) {
        self.activity_tracking = on;
    }

    /// Moves the accumulated activity list into `out` (appending) and
    /// resets the per-socket flags. Handles may be stale by the time the
    /// embedder looks — resolve through [`NetStack::tcb`] and skip
    /// `None`s. Order is deterministic (touch order).
    pub fn drain_activity(&mut self, out: &mut Vec<SockId>) {
        for sock in self.activity.drain(..) {
            if let Some(conn) = self.tcbs.get_mut(sock) {
                conn.queued_activity = false;
                out.push(sock);
            }
        }
    }

    /// The stack's configuration.
    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }

    /// Installs an observability recorder on the stack and every live
    /// connection; future connections inherit it.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        for (_, conn) in self.tcbs.iter_mut() {
            conn.tcb.set_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }

    // ------------------------------------------------------ TCP sockets

    /// Starts listening on `port` (on every accepted IP).
    pub fn listen(&mut self, port: u16) {
        self.listeners.entry(port).or_default();
    }

    /// Returns the next fully established connection accepted on `port`.
    pub fn accept(&mut self, port: u16) -> Option<SockId> {
        let queue = self.listeners.get_mut(&port)?;
        let pos = queue.iter().position(|&sid| {
            matches!(
                self.tcbs.get(sid).map(|c| c.tcb.state()),
                Some(s) if s.is_synchronized() && s != TcpState::Closed
            )
        })?;
        let sock = queue.remove(pos);
        if let Some(conn) = self.tcbs.get_mut(sock) {
            conn.listen_port = None;
        }
        Some(sock)
    }

    /// Opens a connection from `local_ip` (must be one of ours) to the
    /// remote endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`StackError::NoPorts`] if no ephemeral port is free.
    pub fn connect(
        &mut self,
        now: SimTime,
        remote_ip: Ipv4Addr,
        remote_port: u16,
    ) -> Result<SockId, StackError> {
        let local_port = self.alloc_ephemeral(remote_ip, remote_port)?;
        let quad = Quad::new(self.cfg.ip, local_port, remote_ip, remote_port);
        let iss = SeqNum(self.isn_rng.next_u64() as u32);
        let mut tcb = Tcb::connect(now, quad, iss, self.cfg.tcp.clone());
        tcb.set_recorder(self.recorder.clone());
        Ok(self.insert_tcb(quad, tcb))
    }

    fn alloc_ephemeral(
        &mut self,
        remote_ip: Ipv4Addr,
        remote_port: u16,
    ) -> Result<u16, StackError> {
        for _ in 0..20000 {
            let port = self.next_ephemeral;
            self.next_ephemeral =
                if self.next_ephemeral >= 60000 { EPHEMERAL_BASE } else { self.next_ephemeral + 1 };
            let quad = Quad::new(self.cfg.ip, port, remote_ip, remote_port);
            if !self.by_quad.contains_key(&quad) {
                return Ok(port);
            }
        }
        Err(StackError::NoPorts)
    }

    fn insert_tcb(&mut self, quad: Quad, tcb: Tcb) -> SockId {
        let sock = self.tcbs.insert(Conn::new(tcb));
        self.by_quad.insert(quad, sock);
        self.mark_dirty(sock);
        sock
    }

    /// Queues application data; returns bytes accepted.
    ///
    /// Marks the socket for polling only when bytes were actually
    /// accepted: embedders drive read/write speculatively over every
    /// active socket each pump, and a no-op call must not re-mark the
    /// socket active or the activity list degrades to "every open
    /// connection, every pump" — O(fleet) per event.
    ///
    /// # Errors
    ///
    /// [`StackError::BadSocket`] for a dead handle.
    pub fn write(&mut self, sock: SockId, data: &[u8]) -> Result<usize, StackError> {
        let conn = self.tcbs.get_mut(sock).ok_or(StackError::BadSocket)?;
        let n = conn.tcb.write(data);
        if n > 0 {
            self.mark_dirty(sock);
        }
        Ok(n)
    }

    /// Reads received data into `buf`; returns bytes copied.
    ///
    /// Like [`NetStack::write`], a read that copies nothing does not
    /// re-mark the socket (reading bytes can open the receive window,
    /// so a non-empty read does).
    ///
    /// # Errors
    ///
    /// [`StackError::BadSocket`] for a dead handle.
    pub fn read(&mut self, sock: SockId, buf: &mut [u8]) -> Result<usize, StackError> {
        let conn = self.tcbs.get_mut(sock).ok_or(StackError::BadSocket)?;
        let n = conn.tcb.read(buf);
        if n > 0 {
            self.mark_dirty(sock);
        }
        Ok(n)
    }

    /// Begins an orderly close.
    pub fn close(&mut self, now: SimTime, sock: SockId) {
        if let Some(tcb) = self.tcb_mut(sock) {
            tcb.close(now);
        }
    }

    /// Aborts with a RST.
    pub fn abort(&mut self, now: SimTime, sock: SockId) {
        if let Some(tcb) = self.tcb_mut(sock) {
            tcb.abort(now);
        }
    }

    /// The connection's state, if the handle is live.
    pub fn state(&self, sock: SockId) -> Option<TcpState> {
        self.tcb(sock).map(|t| t.state())
    }

    /// Read access to a connection's full TCB (ST-TCP engines use this
    /// for `NextByteExpected`, retention introspection, etc.).
    pub fn tcb(&self, sock: SockId) -> Option<&Tcb> {
        self.tcbs.get(sock).map(|c| &c.tcb)
    }

    /// Mutable access to a connection's TCB (side-channel injection).
    /// Marks the socket for the next poll pass — external mutation may
    /// stage output or move deadlines.
    pub fn tcb_mut(&mut self, sock: SockId) -> Option<&mut Tcb> {
        self.mark_dirty(sock);
        self.tcbs.get_mut(sock).map(|c| &mut c.tcb)
    }

    /// Number of live connections.
    pub fn sock_count(&self) -> usize {
        self.tcbs.len()
    }

    /// Releases a closed connection's slot so long-running servers do
    /// not accumulate dead TCBs. The handle becomes invalid (its slot's
    /// generation moves on) and the slot is reused by future connections.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if the connection is not `Closed` —
    /// release is a cleanup step, not a close operation.
    pub fn release(&mut self, sock: SockId) {
        if let Some(conn) = self.tcbs.remove(sock) {
            debug_assert_eq!(conn.tcb.state(), TcpState::Closed, "release() requires a closed TCB");
            self.by_quad.remove(&conn.tcb.quad());
            // At most one listener queue can still reference the socket;
            // the slot remembers which.
            if let Some(port) = conn.listen_port {
                if let Some(queue) = self.listeners.get_mut(&port) {
                    queue.retain(|&sid| sid != sock);
                }
            }
        }
    }

    /// Finds the connection with this exact four-tuple.
    pub fn sock_by_quad(&self, quad: Quad) -> Option<SockId> {
        self.by_quad.get(&quad).copied()
    }

    /// All live connections, in deterministic (slot index) order.
    pub fn socks(&self) -> impl Iterator<Item = SockId> + '_ {
        self.tcbs.iter().map(|(id, _)| id)
    }

    // ------------------------------------------------------ UDP sockets

    /// Binds a UDP socket. With several sockets on one port, datagrams
    /// go to the first bind (matching the old first-match demux).
    pub fn udp_bind(&mut self, port: u16) -> UdpId {
        self.udps.push(UdpSocket::new(port, 256));
        let idx = self.udps.len() - 1;
        self.udp_ports.entry(port).or_insert(idx);
        UdpId(idx)
    }

    /// Sends a datagram from our primary IP.
    pub fn udp_send(
        &mut self,
        now: SimTime,
        udp: UdpId,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        payload: Bytes,
    ) {
        let Some(sock) = self.udps.get(udp.0) else {
            return;
        };
        let src_port = sock.port();
        let dgram = UdpDatagram::new(src_port, dst_port, payload);
        let packet = Ipv4Packet {
            ident: self.next_ident(),
            ttl: 64,
            protocol: IpProtocol::Udp,
            src: self.cfg.ip,
            dst: dst_ip,
            payload: dgram.encode(self.cfg.ip, dst_ip),
        };
        self.emit_ip(now, packet);
    }

    /// Receives the oldest queued datagram on `udp`.
    pub fn udp_recv(&mut self, udp: UdpId) -> Option<UdpRecv> {
        self.udps.get_mut(udp.0)?.recv()
    }

    // ------------------------------------------------ ST-TCP suppression

    /// Suppresses all egress sourced from `ip` (backup shadow mode).
    pub fn suppress(&mut self, now: SimTime, ip: Ipv4Addr) {
        if self.suppressed.insert(ip) {
            self.recorder.trace(now.as_nanos(), &TraceEvent::Suppression { ip, on: true });
        }
    }

    /// Lifts suppression of `ip` — the takeover switch. "As soon as the
    /// flag is set, the kernel starts sending the packets to the client
    /// instead of dropping them" (§5).
    pub fn unsuppress(&mut self, now: SimTime, ip: Ipv4Addr) {
        if self.suppressed.remove(&ip) {
            self.takeover_watch = true;
            self.recorder.trace(now.as_nanos(), &TraceEvent::Suppression { ip, on: false });
        }
    }

    /// Whether `ip`'s egress is currently suppressed.
    pub fn is_suppressed(&self, ip: Ipv4Addr) -> bool {
        self.suppressed.contains(&ip)
    }

    // ---------------------------------------------------------- ingress

    /// Processes one received frame.
    pub fn handle_frame(&mut self, now: SimTime, raw: Bytes) {
        self.stats.frames_in += 1;
        let Ok(eth) = EthernetFrame::parse(raw) else {
            self.stats.parse_errors += 1;
            return;
        };
        let for_us = eth.dst == self.cfg.mac
            || eth.dst.is_broadcast()
            || self.cfg.accept_macs.contains(&eth.dst)
            || self.cfg.promiscuous;
        if !for_us {
            self.stats.frames_filtered += 1;
            return;
        }
        self.stats.frames_accepted += 1;
        match eth.ethertype {
            EtherType::Arp => self.handle_arp(now, &eth),
            EtherType::Ipv4 => self.handle_ip(now, eth),
            EtherType::Other(_) => {}
        }
    }

    fn handle_arp(&mut self, now: SimTime, eth: &EthernetFrame) {
        let Ok(arp) = ArpPacket::parse(&eth.payload) else {
            self.stats.parse_errors += 1;
            return;
        };
        self.arp.learn(arp.sender_ip, arp.sender_mac);
        self.flush_arp_queue(now, arp.sender_ip);
        if arp.op == ArpOp::Request && self.cfg.all_ips().any(|ip| ip == arp.target_ip) {
            if self.suppressed.contains(&arp.target_ip) {
                self.stats.arps_suppressed += 1;
                return;
            }
            let reply = ArpPacket::reply(self.cfg.mac, arp.target_ip, &arp);
            let frame =
                EthernetFrame::new(arp.sender_mac, self.cfg.mac, EtherType::Arp, reply.encode());
            self.push_frame(frame.encode());
        }
    }

    fn handle_ip(&mut self, now: SimTime, eth: EthernetFrame) {
        let Ok(ip) = Ipv4Packet::parse(eth.payload) else {
            self.stats.parse_errors += 1;
            return;
        };
        if self.cfg.learn_from_ip && !eth.src.is_multicast() {
            self.arp.learn(ip.src, eth.src);
            self.flush_arp_queue(now, ip.src);
        }
        if !self.cfg.all_ips().any(|mine| mine == ip.dst) {
            return; // tapped frame addressed elsewhere; engines inspect separately
        }
        match ip.protocol {
            IpProtocol::Tcp => self.handle_tcp(now, ip),
            IpProtocol::Udp => self.handle_udp(ip),
            IpProtocol::Other(_) => {}
        }
    }

    fn handle_tcp(&mut self, now: SimTime, ip: Ipv4Packet) {
        let (src, dst) = (ip.src, ip.dst);
        let Ok(seg) = TcpSegment::parse(ip.payload, src, dst) else {
            self.stats.parse_errors += 1;
            return;
        };
        let quad = Quad::new(dst, seg.dst_port, src, seg.src_port);
        if let Some(&sock) = self.by_quad.get(&quad) {
            if let Some(conn) = self.tcbs.get_mut(sock) {
                conn.tcb.on_segment(now, &seg);
                if conn.tcb.state() == TcpState::Closed {
                    self.by_quad.remove(&quad);
                }
                self.mark_dirty(sock);
                return;
            }
        }
        // No connection. A SYN to a listening port spawns one.
        if seg.flags.contains(TcpFlags::SYN)
            && !seg.flags.contains(TcpFlags::ACK)
            && self.listeners.contains_key(&seg.dst_port)
        {
            let iss = SeqNum(self.isn_rng.next_u64() as u32);
            let mut tcb = Tcb::accept(now, quad, iss, &seg, self.cfg.tcp.clone());
            tcb.set_recorder(self.recorder.clone());
            let sid = self.insert_tcb(quad, tcb);
            self.tcbs.get_mut(sid).expect("just inserted").listen_port = Some(seg.dst_port);
            self.listeners.get_mut(&seg.dst_port).expect("checked").push(sid);
            return;
        }
        // Otherwise: RST (never in response to a RST).
        if !seg.flags.contains(TcpFlags::RST) {
            self.send_rst(now, src, dst, &seg);
        }
    }

    fn send_rst(&mut self, now: SimTime, src: Ipv4Addr, dst: Ipv4Addr, seg: &TcpSegment) {
        let rst = if seg.flags.contains(TcpFlags::ACK) {
            TcpSegment::bare(seg.dst_port, seg.src_port, seg.ack, 0, TcpFlags::RST, 0)
        } else {
            let mut s = TcpSegment::bare(
                seg.dst_port,
                seg.src_port,
                0,
                seg.seq.wrapping_add(seg.seq_len()),
                TcpFlags::RST | TcpFlags::ACK,
                0,
            );
            s.ack = seg.seq.wrapping_add(seg.seq_len());
            s
        };
        self.stats.rsts_sent += 1;
        let packet = Ipv4Packet {
            ident: self.next_ident(),
            ttl: 64,
            protocol: IpProtocol::Tcp,
            src: dst,
            dst: src,
            payload: rst.encode(dst, src),
        };
        self.emit_ip(now, packet);
    }

    fn handle_udp(&mut self, ip: Ipv4Packet) {
        let (src, dst) = (ip.src, ip.dst);
        let Ok(dgram) = UdpDatagram::parse(ip.payload, src, dst) else {
            self.stats.parse_errors += 1;
            return;
        };
        if let Some(&idx) = self.udp_ports.get(&dgram.dst_port) {
            self.udps[idx].deliver(UdpRecv {
                src_ip: src,
                src_port: dgram.src_port,
                payload: dgram.payload,
            });
        }
    }

    // ----------------------------------------------------------- egress

    /// Drives timers and collects every frame ready to transmit.
    pub fn poll(&mut self, now: SimTime) -> Vec<Bytes> {
        let mut frames = Vec::new();
        self.poll_into(now, &mut frames);
        frames
    }

    /// Drives timers and appends every ready frame to `frames`.
    ///
    /// The allocation-lean form of [`NetStack::poll`]: callers keep and
    /// reuse `frames`, staged segments stay inside each TCB, and data
    /// payloads flow from the send-buffer ring straight into the frame
    /// builder — one memcpy, zero allocations per frame at steady state.
    ///
    /// O(active): only sockets touched since the last poll (ingress, API
    /// calls, `tcb_mut`) or with a due timer-wheel entry are visited —
    /// idle connections cost nothing, no matter how many exist.
    pub fn poll_into(&mut self, now: SimTime, frames: &mut Vec<Bytes>) {
        self.retry_arp(now);
        self.builder.recycle();
        // Due (or stale — lazy cancellation) wheel entries join the pass.
        let mut expired = std::mem::take(&mut self.wheel_expired);
        expired.clear();
        self.wheel.advance(now.as_nanos(), &mut expired);
        for &raw in &expired {
            let sock = SockId::from_raw(raw);
            if let Some(conn) = self.tcbs.get_mut(sock) {
                conn.armed = None;
                self.mark_dirty(sock);
            }
        }
        self.wheel_expired = expired;
        let mut i = 0;
        while i < self.poll_queue.len() {
            let sock = self.poll_queue[i];
            i += 1;
            let Some(conn) = self.tcbs.get_mut(sock) else {
                continue; // released since it was queued
            };
            conn.queued_poll = false;
            conn.tcb.poll_stage(now);
            self.emit_staged(now, sock);
            let closed_quad = {
                let conn = self.tcbs.get_mut(sock).expect("live conn");
                conn.tcb.clear_staged();
                (conn.tcb.state() == TcpState::Closed).then(|| conn.tcb.quad())
            };
            if let Some(quad) = closed_quad {
                self.by_quad.remove(&quad);
            }
            self.rearm(sock);
        }
        self.poll_queue.clear();
        self.stats.frames_out += self.out.len() as u64;
        frames.extend(self.out.drain(..));
    }

    /// Ensures the wheel will wake the stack no later than `sock`'s
    /// earliest TCB deadline. Called after every visit; entries are
    /// never cancelled (stale ones pop harmlessly), so scheduling is
    /// needed only when the deadline moved *earlier* than what's armed.
    fn rearm(&mut self, sock: SockId) {
        if let Some(conn) = self.tcbs.get_mut(sock) {
            if let Some(deadline) = conn.tcb.next_deadline() {
                let need = conn.armed.is_none_or(|armed| deadline < armed);
                if need {
                    conn.armed = Some(deadline);
                    self.wheel.schedule(deadline.as_nanos(), sock.raw());
                }
            }
        }
    }

    /// Transmits everything `sock` staged in this poll.
    ///
    /// With a resolved next hop this composes each segment straight into
    /// the frame builder (borrowing data payloads from the send buffer);
    /// without one it falls back to the layered encode chain and queues
    /// the packets behind an ARP request.
    fn emit_staged(&mut self, now: SimTime, sock: SockId) {
        let tcb = &self.tcbs.get(sock).expect("live TCB").tcb;
        let staged = tcb.staged();
        if staged.is_empty() {
            return;
        }
        let quad = tcb.quad();
        if self.suppressed.contains(&quad.local_ip) {
            self.stats.segs_suppressed += staged.len() as u64;
            self.recorder.count(Counter::SegsSuppressed, staged.len() as u64);
            return;
        }
        if self.takeover_watch {
            let carries_data = staged.iter().any(|s| match s {
                StagedSeg::Ctl(seg) => !seg.payload.is_empty(),
                StagedSeg::Data { len, .. } => *len > 0,
            });
            if carries_data {
                self.recorder.mark_first(Mark::FirstByteAfterTakeover, now.as_nanos());
                self.recorder
                    .trace(now.as_nanos(), &TraceEvent::FirstByte { conn: quad.trace_conn() });
                self.takeover_watch = false;
            }
        }
        // Wire summary: one event per segment reaching the wire (never
        // for suppressed egress above).
        for s in staged {
            let (seq, len, flags) = match s {
                StagedSeg::Ctl(seg) => (seg.seq, seg.payload.len() as u32, seg.flags),
                StagedSeg::Data { seq, len, flags, .. } => (seq.raw(), u32::from(*len), *flags),
            };
            self.recorder.trace(
                now.as_nanos(),
                &TraceEvent::WireData { conn: quad.trace_conn(), seq, len, flags: flags.bits() },
            );
        }
        let next_hop = if self.cfg.on_subnet(quad.remote_ip) {
            quad.remote_ip
        } else {
            match self.cfg.gateway {
                Some(gw) => gw,
                None => return, // unroutable
            }
        };
        if let Some(mac) = self.arp.lookup(next_hop) {
            for staged_seg in tcb.staged() {
                self.ip_ident = self.ip_ident.wrapping_add(1);
                let mut hdr = TcpFrameHeader {
                    eth_dst: mac,
                    eth_src: self.cfg.mac,
                    ip_src: quad.local_ip,
                    ip_dst: quad.remote_ip,
                    ident: self.ip_ident,
                    ttl: 64,
                    src_port: quad.local_port,
                    dst_port: quad.remote_port,
                    seq: 0,
                    ack: 0,
                    flags: TcpFlags::from_bits(0),
                    window: 0,
                    options: &[],
                };
                let frame = match staged_seg {
                    StagedSeg::Ctl(seg) => {
                        hdr.src_port = seg.src_port;
                        hdr.dst_port = seg.dst_port;
                        hdr.seq = seg.seq;
                        hdr.ack = seg.ack;
                        hdr.flags = seg.flags;
                        hdr.window = seg.window;
                        hdr.options = &seg.options;
                        self.builder.tcp_frame(&hdr, (&seg.payload, &[]))
                    }
                    StagedSeg::Data { seq, len, flags, ack, window } => {
                        hdr.seq = seq.raw();
                        hdr.ack = *ack;
                        hdr.flags = *flags;
                        hdr.window = *window;
                        self.builder.tcp_frame(&hdr, tcb.payload_slices(*seq, usize::from(*len)))
                    }
                };
                self.out.push_back(frame);
            }
        } else {
            // ARP miss: materialize the staged segments and queue them
            // as IP packets behind the request (the pre-builder path).
            for i in 0..staged.len() {
                let seg = tcb.materialize(i);
                let packet = Ipv4Packet {
                    ident: {
                        self.ip_ident = self.ip_ident.wrapping_add(1);
                        self.ip_ident
                    },
                    ttl: 64,
                    protocol: IpProtocol::Tcp,
                    src: quad.local_ip,
                    dst: quad.remote_ip,
                    payload: seg.encode(quad.local_ip, quad.remote_ip),
                };
                let entry = self.pending_arp.entry(next_hop).or_insert(ArpPending {
                    last_request: now,
                    tries: 0,
                    queued: Vec::new(),
                });
                if entry.queued.len() < 64 {
                    entry.queued.push(packet);
                } else {
                    self.stats.arp_queue_drops += 1;
                }
                if entry.tries == 0 {
                    entry.tries = 1;
                    entry.last_request = now;
                    let req = ArpPacket::request(self.cfg.mac, self.cfg.ip, next_hop);
                    let frame = EthernetFrame::new(
                        MacAddr::BROADCAST,
                        self.cfg.mac,
                        EtherType::Arp,
                        req.encode(),
                    );
                    self.out.push_back(frame.encode());
                }
            }
        }
    }

    /// The earliest instant at which [`NetStack::poll`] has new work.
    ///
    /// O(1): read off the timer wheel instead of scanning TCBs. The value
    /// is *conservative* — never later than any real deadline, possibly
    /// early for coarse-slotted entries (the poll finds nothing due and
    /// re-arms precisely; see the `twheel` module docs). Accurate only
    /// after a poll, which every embedder performs before sleeping.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let tcb_min = self.wheel.next_expiry().map(SimTime::from_nanos);
        let arp_min = self.pending_arp.values().map(|p| p.last_request + ARP_RETRY).min();
        [tcb_min, arp_min].into_iter().flatten().min()
    }

    fn emit_ip(&mut self, now: SimTime, packet: Ipv4Packet) {
        // Egress suppression is enforced at the single emission choke
        // point so that *every* frame sourced from a suppressed IP is
        // covered — connection segments, RSTs for unknown quads, all of
        // it. A backup that RST a client because its shadow was missing
        // would kill the very connection it exists to protect.
        if self.suppressed.contains(&packet.src) {
            self.stats.segs_suppressed += 1;
            self.recorder.count(Counter::SegsSuppressed, 1);
            return;
        }
        let next_hop = if self.cfg.on_subnet(packet.dst) {
            packet.dst
        } else {
            match self.cfg.gateway {
                Some(gw) => gw,
                None => return, // unroutable
            }
        };
        match self.arp.lookup(next_hop) {
            Some(mac) => {
                let frame = self.builder.ip_frame(mac, self.cfg.mac, &packet);
                self.push_frame(frame);
            }
            None => {
                let entry = self.pending_arp.entry(next_hop).or_insert(ArpPending {
                    last_request: now,
                    tries: 0,
                    queued: Vec::new(),
                });
                if entry.queued.len() < 64 {
                    entry.queued.push(packet);
                } else {
                    self.stats.arp_queue_drops += 1;
                }
                if entry.tries == 0 {
                    entry.tries = 1;
                    entry.last_request = now;
                    self.send_arp_request(next_hop);
                }
            }
        }
    }

    fn retry_arp(&mut self, now: SimTime) {
        let mut dead: Vec<Ipv4Addr> = Vec::new();
        let mut to_request: Vec<Ipv4Addr> = Vec::new();
        for (&ip, pending) in &mut self.pending_arp {
            if now
                .checked_duration_since(pending.last_request)
                .map(|d| d >= ARP_RETRY)
                .unwrap_or(false)
            {
                if pending.tries >= ARP_MAX_TRIES {
                    dead.push(ip);
                } else {
                    pending.tries += 1;
                    pending.last_request = now;
                    to_request.push(ip);
                }
            }
        }
        for ip in to_request {
            self.send_arp_request(ip);
        }
        for ip in dead {
            if let Some(p) = self.pending_arp.remove(&ip) {
                self.stats.arp_queue_drops += p.queued.len() as u64;
            }
        }
    }

    fn send_arp_request(&mut self, target: Ipv4Addr) {
        let req = ArpPacket::request(self.cfg.mac, self.cfg.ip, target);
        let frame =
            EthernetFrame::new(MacAddr::BROADCAST, self.cfg.mac, EtherType::Arp, req.encode());
        self.push_frame(frame.encode());
    }

    fn flush_arp_queue(&mut self, _now: SimTime, ip: Ipv4Addr) {
        let Some(pending) = self.pending_arp.remove(&ip) else {
            return;
        };
        let Some(mac) = self.arp.lookup(ip) else {
            self.pending_arp.insert(ip, pending);
            return;
        };
        for packet in pending.queued {
            let frame = EthernetFrame::new(mac, self.cfg.mac, EtherType::Ipv4, packet.encode());
            self.push_frame(frame.encode());
        }
    }

    fn push_frame(&mut self, frame: Bytes) {
        self.out.push_back(frame);
    }

    fn next_ident(&mut self) -> u16 {
        self.ip_ident = self.ip_ident.wrapping_add(1);
        self.ip_ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StackConfig;

    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn client() -> NetStack {
        let mut cfg = StackConfig::host(MacAddr::local(1), CLIENT_IP);
        cfg.isn_seed = 11;
        NetStack::new(cfg)
    }

    fn server() -> NetStack {
        let mut cfg = StackConfig::host(MacAddr::local(2), SERVER_IP);
        cfg.isn_seed = 22;
        NetStack::new(cfg)
    }

    /// Shuttles frames between two stacks until both go quiet, advancing
    /// a fake clock by `step` per exchange. Returns rounds used.
    fn pump(a: &mut NetStack, b: &mut NetStack, now: &mut SimTime, step: SimDuration) -> usize {
        let mut rounds = 0;
        loop {
            let fa = a.poll(*now);
            let fb = b.poll(*now);
            if fa.is_empty() && fb.is_empty() {
                return rounds;
            }
            *now += step;
            for f in fa {
                b.handle_frame(*now, f);
            }
            for f in fb {
                a.handle_frame(*now, f);
            }
            rounds += 1;
            assert!(rounds < 10_000, "pump did not converge");
        }
    }

    fn established_pair() -> (NetStack, NetStack, SockId, SockId, SimTime) {
        let mut c = client();
        let mut s = server();
        s.listen(80);
        let mut now = SimTime::ZERO;
        let csock = c.connect(now, SERVER_IP, 80).unwrap();
        pump(&mut c, &mut s, &mut now, SimDuration::from_micros(100));
        let ssock = s.accept(80).expect("server should accept");
        assert_eq!(c.state(csock), Some(TcpState::Established));
        assert_eq!(s.state(ssock), Some(TcpState::Established));
        (c, s, csock, ssock, now)
    }

    #[test]
    fn three_way_handshake_with_arp() {
        let (_c, s, _cs, ssock, _now) = established_pair();
        // Server learned the client ISN via the SYN.
        let tcb = s.tcb(ssock).unwrap();
        assert!(tcb.state().is_synchronized());
    }

    #[test]
    fn data_both_directions() {
        let (mut c, mut s, cs, ss, mut now) = established_pair();
        assert_eq!(c.write(cs, b"ping").unwrap(), 4);
        pump(&mut c, &mut s, &mut now, SimDuration::from_micros(100));
        let mut buf = [0u8; 16];
        assert_eq!(s.read(ss, &mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        assert_eq!(s.write(ss, b"pong!").unwrap(), 5);
        pump(&mut c, &mut s, &mut now, SimDuration::from_micros(100));
        assert_eq!(c.read(cs, &mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"pong!");
    }

    #[test]
    fn bulk_transfer_respects_window_and_completes() {
        let (mut c, mut s, cs, ss, mut now) = established_pair();
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut sent = 0;
        let mut received = Vec::new();
        let mut buf = [0u8; 4096];
        let mut spins = 0;
        while received.len() < payload.len() {
            sent += s.write(ss, &payload[sent..]).unwrap();
            // Advance time enough for delack/rtx timers to fire if needed.
            now += SimDuration::from_millis(1);
            pump(&mut c, &mut s, &mut now, SimDuration::from_micros(50));
            loop {
                let n = c.read(cs, &mut buf).unwrap();
                if n == 0 {
                    break;
                }
                received.extend_from_slice(&buf[..n]);
            }
            spins += 1;
            assert!(spins < 10_000, "bulk transfer stalled at {}", received.len());
        }
        assert_eq!(received, payload);
    }

    #[test]
    fn orderly_close_reaches_time_wait_and_closed() {
        let (mut c, mut s, cs, ss, mut now) = established_pair();
        c.close(now, cs);
        pump(&mut c, &mut s, &mut now, SimDuration::from_micros(100));
        assert_eq!(s.state(ss), Some(TcpState::CloseWait));
        assert_eq!(c.state(cs), Some(TcpState::FinWait2));
        s.close(now, ss);
        pump(&mut c, &mut s, &mut now, SimDuration::from_micros(100));
        assert_eq!(s.state(ss), Some(TcpState::Closed));
        assert_eq!(c.state(cs), Some(TcpState::TimeWait));
        // TIME_WAIT expires.
        now += SimDuration::from_secs(61);
        c.poll(now);
        assert_eq!(c.state(cs), Some(TcpState::Closed));
    }

    #[test]
    fn rst_for_unknown_port() {
        let mut c = client();
        let mut s = server(); // no listener
        let mut now = SimTime::ZERO;
        let cs = c.connect(now, SERVER_IP, 9999).unwrap();
        pump(&mut c, &mut s, &mut now, SimDuration::from_micros(100));
        assert_eq!(c.state(cs), Some(TcpState::Closed), "SYN to closed port must be reset");
        assert_eq!(s.stats.rsts_sent, 1);
    }

    #[test]
    fn retransmission_recovers_loss() {
        let (mut c, mut s, cs, ss, mut now) = established_pair();
        c.write(cs, b"lost").unwrap();
        // Drop the client's output entirely (the data segment vanishes).
        let lost = c.poll(now);
        assert!(!lost.is_empty());
        drop(lost);
        // Nothing arrives; the client's RTO fires (>= 200ms floor).
        now += SimDuration::from_millis(250);
        pump(&mut c, &mut s, &mut now, SimDuration::from_micros(100));
        let mut buf = [0u8; 8];
        assert_eq!(s.read(ss, &mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"lost");
        assert!(c.tcb(cs).unwrap().stats.rto_retransmits >= 1);
    }

    #[test]
    fn suppression_drops_egress_and_counts() {
        let (mut c, mut s, cs, _ss, mut now) = established_pair();
        s.suppress(now, SERVER_IP);
        c.write(cs, b"hello?").unwrap();
        // Client sends; server receives but its (delayed) ACKs are
        // suppressed. Step past the 40 ms delayed-ACK timer each round.
        for _ in 0..3 {
            let fc = c.poll(now);
            for f in fc {
                s.handle_frame(now, f);
            }
            now += SimDuration::from_millis(50);
            let fs = s.poll(now);
            assert!(fs.is_empty(), "suppressed stack must emit nothing");
        }
        assert!(s.stats.segs_suppressed > 0);
        // Unsuppress: the client's retransmission now gets acked.
        s.unsuppress(now, SERVER_IP);
        now += SimDuration::from_millis(300);
        pump(&mut c, &mut s, &mut now, SimDuration::from_micros(100));
        assert_eq!(c.tcb(cs).unwrap().snd_una(), c.tcb(cs).unwrap().snd_nxt());
    }

    #[test]
    fn suppressed_ip_does_not_answer_arp() {
        let mut s = server();
        s.suppress(SimTime::ZERO, SERVER_IP);
        let req = ArpPacket::request(MacAddr::local(1), CLIENT_IP, SERVER_IP);
        let frame =
            EthernetFrame::new(MacAddr::BROADCAST, MacAddr::local(1), EtherType::Arp, req.encode());
        s.handle_frame(SimTime::ZERO, frame.encode());
        assert!(s.poll(SimTime::ZERO).is_empty());
        assert_eq!(s.stats.arps_suppressed, 1);
    }

    #[test]
    fn udp_roundtrip_with_arp_resolution() {
        let mut a = client();
        let mut b = server();
        let ua = a.udp_bind(5000);
        let ub = b.udp_bind(6000);
        let mut now = SimTime::ZERO;
        a.udp_send(now, ua, SERVER_IP, 6000, Bytes::from_static(b"heartbeat"));
        pump(&mut a, &mut b, &mut now, SimDuration::from_micros(100));
        let got = b.udp_recv(ub).expect("datagram should arrive after ARP");
        assert_eq!(got.payload, Bytes::from_static(b"heartbeat"));
        assert_eq!(got.src_ip, CLIENT_IP);
        assert_eq!(got.src_port, 5000);
        // Reply flows without further ARP.
        b.udp_send(now, ub, CLIENT_IP, 5000, Bytes::from_static(b"ack"));
        pump(&mut a, &mut b, &mut now, SimDuration::from_micros(100));
        assert_eq!(a.udp_recv(ua).unwrap().payload, Bytes::from_static(b"ack"));
    }

    #[test]
    fn nic_filter_rejects_foreign_unicast() {
        let mut s = server();
        let mut seg = TcpSegment::bare(1, 2, 0, 0, TcpFlags::ACK, 0);
        seg.payload = Bytes::from_static(b"x");
        let ip = Ipv4Packet::new(
            CLIENT_IP,
            SERVER_IP,
            IpProtocol::Tcp,
            seg.encode(CLIENT_IP, SERVER_IP),
        );
        let frame =
            EthernetFrame::new(MacAddr::local(99), MacAddr::local(1), EtherType::Ipv4, ip.encode());
        s.handle_frame(SimTime::ZERO, frame.encode());
        assert_eq!(s.stats.frames_filtered, 1);
        assert_eq!(s.stats.frames_accepted, 0);
    }

    #[test]
    fn promiscuous_accepts_and_learns() {
        let mut cfg = StackConfig::host(MacAddr::local(3), Ipv4Addr::new(10, 0, 0, 3));
        cfg.promiscuous = true;
        cfg.learn_from_ip = true;
        let mut tap = NetStack::new(cfg);
        let mut seg = TcpSegment::bare(1, 2, 0, 0, TcpFlags::ACK, 0);
        seg.payload = Bytes::from_static(b"x");
        let ip = Ipv4Packet::new(
            CLIENT_IP,
            SERVER_IP,
            IpProtocol::Tcp,
            seg.encode(CLIENT_IP, SERVER_IP),
        );
        let frame =
            EthernetFrame::new(MacAddr::local(2), MacAddr::local(1), EtherType::Ipv4, ip.encode());
        tap.handle_frame(SimTime::ZERO, frame.encode());
        assert_eq!(tap.stats.frames_accepted, 1);
        // It learned the client's MAC from the tapped frame.
        // (Verified indirectly: an emit to CLIENT_IP requires no ARP.)
        tap.udp_bind(7);
        tap.udp_send(SimTime::ZERO, UdpId(0), CLIENT_IP, 9, Bytes::from_static(b"z"));
        let frames = tap.poll(SimTime::ZERO);
        assert_eq!(frames.len(), 1);
        let out = EthernetFrame::parse(frames[0].clone()).unwrap();
        assert_eq!(out.ethertype, EtherType::Ipv4, "no ARP needed — MAC was learned from the tap");
        assert_eq!(out.dst, MacAddr::local(1));
    }

    #[test]
    fn connect_allocates_distinct_ports() {
        let mut c = client();
        let a = c.connect(SimTime::ZERO, SERVER_IP, 80).unwrap();
        let b = c.connect(SimTime::ZERO, SERVER_IP, 80).unwrap();
        let qa = c.tcb(a).unwrap().quad();
        let qb = c.tcb(b).unwrap().quad();
        assert_ne!(qa.local_port, qb.local_port);
    }

    #[test]
    fn arp_gives_up_after_retries() {
        let mut c = client();
        let u = c.udp_bind(5000);
        let mut now = SimTime::ZERO;
        c.udp_send(now, u, Ipv4Addr::new(10, 0, 0, 200), 1, Bytes::from_static(b"x"));
        let mut requests = 0;
        for _ in 0..10 {
            let frames = c.poll(now);
            requests += frames
                .iter()
                .filter(|f| EthernetFrame::parse((*f).clone()).unwrap().ethertype == EtherType::Arp)
                .count();
            now += SimDuration::from_secs(2);
        }
        assert_eq!(requests, ARP_MAX_TRIES as usize);
        assert_eq!(c.stats.arp_queue_drops, 1);
    }
}
