//! A from-scratch, sans-io userspace TCP/IP stack — the substrate the
//! ST-TCP reproduction modifies, standing in for the paper's Linux
//! 2.2.18 kernel stack.
//!
//! # What is implemented
//!
//! * Ethernet ingress filtering (unicast/broadcast/configured multicast/
//!   promiscuous — the NIC modes the tapping architectures of paper §3.1
//!   need), ARP with static-first resolution, IPv4 without fragmentation.
//! * Full TCP: three-way handshake, reassembly with out-of-order
//!   buffering, flow control, delayed ACKs, RFC 6298 retransmission with
//!   the Linux 200 ms/2 min bounds and ×2 backoff, pluggable congestion
//!   control ([`congestion`]: Reno, CUBIC, BBR behind one trait; Reno
//!   with fast retransmit and restart-after-idle is the default),
//!   optional RFC 2018 SACK ([`sack`]), zero-window probing, orderly
//!   close through TIME_WAIT, RST handling.
//! * UDP sockets (the primary↔backup side channel).
//! * A two-interface IP [`gateway`] (the tapping architecture's
//!   gateway with static `SVI→SME` ARP entries).
//!
//! # ST-TCP extension points
//!
//! The paper modifies the server-side stack in two places, and so do we:
//!
//! * [`recv_buf::RecvBuffer`] implements the primary's *second receive
//!   buffer* with the `LastByteAcked` pointer (§4.2, Figure 4);
//! * [`tcb::Tcb`] implements the backup's *shadow semantics*: ISN
//!   resynchronization from the client's handshake ACK (§4.1) and
//!   tolerance of client ACKs that cover bytes only the primary has
//!   transmitted so far;
//! * [`stack::NetStack`] implements *egress suppression* of the service
//!   IP (the backup "drops" its replies, §4.2) with an instantaneous
//!   takeover switch ([`stack::NetStack::unsuppress`], §5).
//!
//! Everything is sans-io and deterministic: frames in, frames out, time
//! passed explicitly. The `sttcp` crate composes these pieces into
//! simulation nodes.
//!
//! # Example
//!
//! ```
//! use tcpstack::{NetStack, StackConfig};
//! use netsim::SimTime;
//! use wire::MacAddr;
//! use std::net::Ipv4Addr;
//!
//! let mut server = NetStack::new(StackConfig::host(
//!     MacAddr::local(1),
//!     Ipv4Addr::new(10, 0, 0, 2),
//! ));
//! server.listen(80);
//! // frames in via server.handle_frame(now, frame),
//! // frames out via server.poll(now).
//! assert!(server.poll(SimTime::ZERO).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp_cache;
pub mod config;
pub mod congestion;
pub mod gateway;
pub mod recv_buf;
pub mod rto;
pub mod sack;
pub mod send_buf;
pub mod seq;
pub mod slab;
pub mod stack;
pub mod tcb;
pub mod twheel;
pub mod udp_socket;

pub use config::{Quad, StackConfig, TcpConfig};
pub use congestion::{CongSnapshot, CongestionAlgo, CongestionController, CongestionCtrl};
pub use gateway::{Gateway, GatewayIface, Side};
pub use sack::SackScoreboard;
pub use seq::SeqNum;
pub use stack::{NetStack, SockId, StackError, UdpId};
pub use tcb::{StagedSeg, Tcb, TcpState};
pub use twheel::TimerWheel;
pub use udp_socket::UdpRecv;
