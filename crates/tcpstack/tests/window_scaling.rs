//! RFC 1323 window scaling: negotiation rules and large-window
//! throughput (beyond the paper — its testbed never needed > 64 KB
//! windows, but a modern gigabit deployment of ST-TCP would).

use netsim::{SimDuration, SimTime};
use std::net::Ipv4Addr;
use tcpstack::{CongestionController, NetStack, StackConfig, TcpState};
use wire::MacAddr;

const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn stack(ip: Ipv4Addr, mac: u32, recv_buf: usize, wscale: Option<u8>) -> NetStack {
    let mut cfg = StackConfig::host(MacAddr::local(mac), ip);
    cfg.isn_seed = u64::from(mac) + 7;
    cfg.tcp.recv_buf = recv_buf;
    cfg.tcp.window_scale = wscale;
    cfg.tcp.send_buf = 512 * 1024;
    NetStack::new(cfg)
}

/// A bidirectional pipe with 5 ms one-way latency: the link regime where
/// the bandwidth-delay product dwarfs 64 KB and window size rules.
const ONE_WAY: SimDuration = SimDuration::from_millis(5);
const TICK: SimDuration = SimDuration::from_micros(100);
/// Per-frame serialization spacing (≈1 Gbit line rate): keeps arrivals
/// spread out so the receiver's ACK clock ticks realistically instead
/// of coalescing a whole window into one cumulative ACK.
const GAP: SimDuration = SimDuration::from_micros(12);

struct Pipe {
    now: SimTime,
    to_b: std::collections::VecDeque<(SimTime, bytes::Bytes)>,
    to_a: std::collections::VecDeque<(SimTime, bytes::Bytes)>,
    sched_b: SimTime,
    sched_a: SimTime,
}

impl Pipe {
    fn new() -> Self {
        Pipe {
            now: SimTime::ZERO,
            to_b: Default::default(),
            to_a: Default::default(),
            sched_b: SimTime::ZERO,
            sched_a: SimTime::ZERO,
        }
    }

    /// One tick: collect output, deliver frames whose latency elapsed,
    /// pacing deliveries by the line-rate gap.
    fn tick(&mut self, a: &mut NetStack, b: &mut NetStack) {
        for f in a.poll(self.now) {
            self.sched_b = (self.now + ONE_WAY).max(self.sched_b + GAP);
            self.to_b.push_back((self.sched_b, f));
        }
        for f in b.poll(self.now) {
            self.sched_a = (self.now + ONE_WAY).max(self.sched_a + GAP);
            self.to_a.push_back((self.sched_a, f));
        }
        self.now += TICK;
        while self.to_b.front().map(|(t, _)| *t <= self.now).unwrap_or(false) {
            let (t, f) = self.to_b.pop_front().unwrap();
            b.handle_frame(t, f);
            for out in b.poll(t) {
                self.sched_a = (t + ONE_WAY).max(self.sched_a + GAP);
                self.to_a.push_back((self.sched_a, out));
            }
        }
        while self.to_a.front().map(|(t, _)| *t <= self.now).unwrap_or(false) {
            let (t, f) = self.to_a.pop_front().unwrap();
            a.handle_frame(t, f);
            for out in a.poll(t) {
                self.sched_b = (t + ONE_WAY).max(self.sched_b + GAP);
                self.to_b.push_back((self.sched_b, out));
            }
        }
    }
}

/// Transfers `total` bytes a→b over the 10 ms-RTT pipe and returns the
/// virtual time it took.
fn transfer(a: &mut NetStack, b: &mut NetStack, total: usize) -> SimDuration {
    let mut pipe = Pipe::new();
    let cs = a.connect(pipe.now, B_IP, 80).unwrap();
    for _ in 0..1000 {
        pipe.tick(a, b);
        if a.state(cs) == Some(TcpState::Established) {
            break;
        }
    }
    // Let the handshake-completing ACK cross the pipe to B.
    for _ in 0..200 {
        pipe.tick(a, b);
    }
    let ss = b.accept(80).expect("established");
    assert_eq!(a.state(cs), Some(TcpState::Established));
    let start = pipe.now;
    let blob = vec![0x6Eu8; 64 * 1024];
    let mut sent = 0;
    let mut got = 0;
    let mut buf = [0u8; 16384];
    for _ in 0..1_000_000 {
        if sent < total {
            sent += a.write(cs, &blob[..blob.len().min(total - sent)]).unwrap();
        }
        pipe.tick(a, b);
        loop {
            let n = b.read(ss, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            got += n;
        }
        if got >= total {
            break;
        }
        if std::env::var("WS_DEBUG").is_ok() && pipe.now.as_nanos() % 100_000_000 < 500_000 {
            let t = a.tcb(cs).unwrap();
            eprintln!(
                "t={} snd_wnd={} cwnd={} flight={} sent={} got={}",
                pipe.now,
                t.snd_wnd(),
                t.congestion().cwnd(),
                t.flight(),
                sent,
                got
            );
        }
    }
    assert_eq!(got, total);
    pipe.now.duration_since(start)
}

#[test]
fn negotiated_scaling_unlocks_large_windows() {
    // 512 KB windows, scale 4 (512K >> 4 = 32K fits the 16-bit field).
    let mut a = stack(A_IP, 1, 512 * 1024, Some(4));
    let mut b = stack(B_IP, 2, 512 * 1024, Some(4));
    b.listen(80);
    // RTT 10 ms: a 64 KB window caps throughput at ~6.4 MB/s, while a
    // 512 KB window sustains ~50 MB/s.
    let t_scaled = transfer(&mut a, &mut b, 4 << 20);

    let mut a0 = stack(A_IP, 1, 512 * 1024, None);
    let mut b0 = stack(B_IP, 2, 512 * 1024, None);
    b0.listen(80);
    let t_unscaled = transfer(&mut a0, &mut b0, 4 << 20);

    assert!(
        t_scaled.as_nanos() * 3 < t_unscaled.as_nanos(),
        "scaling must lift the 64 KB cap: scaled={t_scaled} unscaled={t_unscaled}"
    );
}

#[test]
fn scaling_requires_both_sides() {
    // Only one side offers: both must fall back to unscaled windows and
    // still interoperate (the window field then caps at 65535).
    for (wa, wb) in [(Some(4), None), (None, Some(4))] {
        let mut a = stack(A_IP, 1, 512 * 1024, wa);
        let mut b = stack(B_IP, 2, 512 * 1024, wb);
        b.listen(80);
        let t = transfer(&mut a, &mut b, 256 * 1024);
        assert!(!t.is_zero());
    }
}

#[test]
fn scaled_window_fields_stay_consistent_under_pressure() {
    // Fill the receiver without draining: the advertised (scaled) window
    // must shrink to zero and the sender must stop, then resume after a
    // read — exercising scaled zero-window handling.
    let mut a = stack(A_IP, 1, 256 * 1024, Some(3));
    let mut b = stack(B_IP, 2, 256 * 1024, Some(3));
    b.listen(80);
    let mut pipe = Pipe::new();
    let cs = a.connect(pipe.now, B_IP, 80).unwrap();
    for _ in 0..1000 {
        pipe.tick(&mut a, &mut b);
        if a.state(cs) == Some(TcpState::Established) {
            break;
        }
    }
    for _ in 0..200 {
        pipe.tick(&mut a, &mut b);
    }
    let ss = b.accept(80).unwrap();
    // Write more than the receive buffer; do not read.
    let blob = vec![1u8; 400 * 1024];
    let mut sent = 0;
    for _ in 0..8000 {
        sent += a.write(cs, &blob[sent..]).unwrap();
        pipe.tick(&mut a, &mut b);
    }
    let received_unread = b.tcb(ss).unwrap().readable();
    assert!(
        received_unread >= 250 * 1024,
        "receiver should hold ≈256 KB unread, has {received_unread}"
    );
    assert_eq!(b.tcb(ss).unwrap().window(), 0, "window must be exhausted");
    // Drain and confirm flow resumes (persist timer needs real time).
    let mut buf = [0u8; 65536];
    let mut drained = 0;
    for _ in 0..40_000 {
        let n = b.read(ss, &mut buf).unwrap();
        drained += n;
        if sent < blob.len() {
            sent += a.write(cs, &blob[sent..]).unwrap();
        }
        pipe.tick(&mut a, &mut b);
        if drained >= 400 * 1024 {
            break;
        }
    }
    assert!(drained >= 400 * 1024, "flow must resume after the window reopens: {drained}");
}
