//! Protocol-level integration tests: several `NetStack`s on a simulated
//! broadcast segment (a miniature hub), including loss and the ST-TCP
//! shadow-tap scenario that the `sttcp` crate builds on.

use netsim::{SimDuration, SimTime, SplitMix64};
use std::net::Ipv4Addr;
use tcpstack::{NetStack, SockId, StackConfig, TcpConfig, TcpState};
use wire::MacAddr;

const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const PRIMARY_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const BACKUP_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

/// A broadcast segment connecting every stack (hub semantics): each
/// emitted frame is offered to every *other* stack's NIC filter after
/// one `latency` step.
struct HubNet {
    stacks: Vec<NetStack>,
    dead: Vec<bool>,
    now: SimTime,
    latency: SimDuration,
    loss_rng: SplitMix64,
    loss_rate: f64,
}

impl HubNet {
    fn new(stacks: Vec<NetStack>) -> Self {
        let dead = vec![false; stacks.len()];
        HubNet {
            stacks,
            dead,
            now: SimTime::ZERO,
            latency: SimDuration::from_micros(100),
            loss_rng: SplitMix64::new(7),
            loss_rate: 0.0,
        }
    }

    /// One exchange round: everyone polls, frames cross the hub.
    /// Returns the number of frames delivered.
    fn round(&mut self) -> usize {
        let mut batches = Vec::new();
        for (i, s) in self.stacks.iter_mut().enumerate() {
            if self.dead[i] {
                let _ = s; // dead stacks neither poll nor receive
                batches.push(Vec::new());
            } else {
                batches.push(s.poll(self.now));
            }
        }
        self.now += self.latency;
        let mut delivered = 0;
        for (from, frames) in batches.into_iter().enumerate() {
            for frame in frames {
                if self.loss_rate > 0.0 && self.loss_rng.chance(self.loss_rate) {
                    continue;
                }
                for (to, s) in self.stacks.iter_mut().enumerate() {
                    if to != from && !self.dead[to] {
                        s.handle_frame(self.now, frame.clone());
                        delivered += 1;
                    }
                }
            }
        }
        delivered
    }

    /// Runs rounds until quiescent or `max` rounds pass.
    fn settle(&mut self, max: usize) {
        for _ in 0..max {
            if self.round() == 0 {
                return;
            }
        }
    }

    /// Advances virtual time (for RTO/delack timers) without traffic.
    fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }
}

fn client_stack() -> NetStack {
    let mut cfg = StackConfig::host(MacAddr::local(1), CLIENT_IP);
    cfg.isn_seed = 101;
    NetStack::new(cfg)
}

fn primary_stack() -> NetStack {
    let mut cfg = StackConfig::host(MacAddr::local(2), PRIMARY_IP);
    cfg.extra_ips = vec![VIP];
    cfg.isn_seed = 202;
    cfg.learn_from_ip = true;
    cfg.tcp = TcpConfig::st_tcp_primary();
    NetStack::new(cfg)
}

fn backup_stack() -> NetStack {
    let mut cfg = StackConfig::host(MacAddr::local(3), BACKUP_IP);
    cfg.extra_ips = vec![VIP];
    cfg.isn_seed = 303; // different from the primary: forces a real resync
    cfg.promiscuous = true;
    cfg.learn_from_ip = true;
    cfg.suppressed_ips = vec![VIP];
    cfg.tcp = TcpConfig::st_tcp_backup();
    NetStack::new(cfg)
}

/// Client connects to the VIP; primary and backup both listen.
/// Returns (net, client sock, primary sock, backup sock).
fn shadow_rig() -> (HubNet, SockId, SockId, SockId) {
    let mut c = client_stack();
    let mut p = primary_stack();
    let mut b = backup_stack();
    p.listen(80);
    b.listen(80);
    let cs = c.connect(SimTime::ZERO, VIP, 80).unwrap();
    let mut net = HubNet::new(vec![c, p, b]);
    net.settle(50);
    let ps = net.stacks[1].accept(80).expect("primary accepts");
    let bs = net.stacks[2].accept(80).expect("backup shadows the connection");
    assert_eq!(net.stacks[0].state(cs), Some(TcpState::Established));
    (net, cs, ps, bs)
}

#[test]
fn shadow_handshake_resynchronizes_isn() {
    let (net, _cs, ps, bs) = shadow_rig();
    let p_tcb = net.stacks[1].tcb(ps).unwrap();
    let b_tcb = net.stacks[2].tcb(bs).unwrap();
    assert_eq!(p_tcb.state(), TcpState::Established);
    assert_eq!(b_tcb.state(), TcpState::Established);
    // §4.1: after the client's handshake ACK the backup's sequence
    // numbers match the primary's exactly.
    assert_eq!(b_tcb.iss(), p_tcb.iss(), "backup adopted the primary's ISN");
    assert_eq!(b_tcb.irs(), p_tcb.irs());
    assert_eq!(b_tcb.snd_nxt(), p_tcb.snd_nxt());
    assert_eq!(b_tcb.stats.isn_resyncs, 1);
    // And the client never saw a frame from the backup.
    assert!(net.stacks[2].stats.segs_suppressed >= 1, "backup SYN/ACK was suppressed");
}

#[test]
fn shadow_receives_identical_byte_stream() {
    let (mut net, cs, ps, bs) = shadow_rig();
    net.stacks[0].write(cs, b"GET /file HTTP/1.0\r\n\r\n").unwrap();
    net.settle(50);
    let mut pbuf = [0u8; 64];
    let mut bbuf = [0u8; 64];
    let pn = net.stacks[1].read(ps, &mut pbuf).unwrap();
    let bn = net.stacks[2].read(bs, &mut bbuf).unwrap();
    assert_eq!(pn, 22);
    assert_eq!(pbuf[..pn], bbuf[..bn], "backup taps exactly the primary's byte stream");
}

#[test]
fn shadow_send_side_tracks_client_acks() {
    let (mut net, cs, ps, bs) = shadow_rig();
    // Client asks; both server apps respond with the same bytes
    // (deterministic application assumption of §3).
    net.stacks[0].write(cs, b"req").unwrap();
    net.settle(50);
    let mut buf = [0u8; 16];
    net.stacks[1].read(ps, &mut buf).unwrap();
    net.stacks[2].read(bs, &mut buf).unwrap();
    net.stacks[1].write(ps, b"response-bytes").unwrap();
    net.stacks[2].write(bs, b"response-bytes").unwrap();
    net.settle(50);
    // Let the client's delayed ACK (40 ms) fire and cross the hub.
    net.advance(SimDuration::from_millis(50));
    net.settle(50);
    // Client got the primary's copy only.
    let n = net.stacks[0].read(cs, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"response-bytes");
    // The client's ACK (tapped) completed the backup's send too.
    let b_tcb = net.stacks[2].tcb(bs).unwrap();
    assert_eq!(
        b_tcb.snd_una(),
        b_tcb.snd_nxt(),
        "tapped client ACK drained the shadow send buffer"
    );
    let p_tcb = net.stacks[1].tcb(ps).unwrap();
    assert_eq!(b_tcb.snd_una(), p_tcb.snd_una());
}

#[test]
fn takeover_after_primary_crash_is_transparent() {
    let (mut net, cs, _ps, bs) = shadow_rig();
    // A request/response cycle to warm everything up.
    net.stacks[0].write(cs, b"req1").unwrap();
    net.settle(50);
    let mut buf = [0u8; 64];
    net.stacks[1].read(_ps, &mut buf).unwrap();
    net.stacks[2].read(bs, &mut buf).unwrap();
    net.stacks[1].write(_ps, b"resp1").unwrap();
    net.stacks[2].write(bs, b"resp1").unwrap();
    net.settle(50);
    let n = net.stacks[0].read(cs, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"resp1");

    // Crash the primary; the backup takes over the VIP.
    net.dead[1] = true;
    net.stacks[2].unsuppress(net.now, VIP);

    // The client sends the next request; only the backup answers now.
    net.stacks[0].write(cs, b"req2").unwrap();
    net.settle(50);
    let n2 = net.stacks[2].read(bs, &mut buf).unwrap();
    assert_eq!(&buf[..n2], b"req2", "backup receives post-takeover data directly");
    net.stacks[2].write(bs, b"resp2").unwrap();
    net.settle(50);
    let n3 = net.stacks[0].read(cs, &mut buf).unwrap();
    assert_eq!(&buf[..n3], b"resp2", "client is served by the backup with no reconnect");
    // Still the same client connection.
    assert_eq!(net.stacks[0].state(cs), Some(TcpState::Established));
}

#[test]
fn takeover_mid_response_retransmits_inflight_bytes() {
    let (mut net, cs, ps, bs) = shadow_rig();
    net.stacks[0].write(cs, b"pull").unwrap();
    net.settle(50);
    let mut buf = [0u8; 128];
    net.stacks[1].read(ps, &mut buf).unwrap();
    net.stacks[2].read(bs, &mut buf).unwrap();
    // Both apps wrote the response, but the primary dies BEFORE its
    // copy reaches the client: write while the primary is dead.
    net.dead[1] = true;
    net.stacks[2].write(bs, b"late-response").unwrap();
    net.stacks[2].unsuppress(net.now, VIP);
    // The backup's (formerly suppressed) transmission machinery must
    // deliver it: let its RTO fire.
    for _ in 0..20 {
        net.advance(SimDuration::from_millis(100));
        net.settle(20);
    }
    let n = net.stacks[0].read(cs, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"late-response", "in-flight data recovered from the backup");
}

#[test]
fn loss_on_the_segment_does_not_break_transfer() {
    // Plain client/server over a lossy hub: TCP reliability holds.
    let mut c = client_stack();
    let mut srv = StackConfig::host(MacAddr::local(5), PRIMARY_IP);
    srv.isn_seed = 55;
    let mut s = NetStack::new(srv);
    s.listen(80);
    let cs = c.connect(SimTime::ZERO, PRIMARY_IP, 80).unwrap();
    let mut net = HubNet::new(vec![c, s]);
    net.settle(50);
    let ss = net.stacks[1].accept(80).expect("established despite loss-free handshake");
    net.loss_rate = 0.1;

    let payload: Vec<u8> = (0..50_000u32).map(|i| (i * 7 % 253) as u8).collect();
    let mut sent = 0;
    let mut got = Vec::new();
    let mut buf = [0u8; 4096];
    for _ in 0..30_000 {
        if sent < payload.len() {
            sent += net.stacks[1].write(ss, &payload[sent..]).unwrap();
        }
        net.round();
        // Advance so retransmission timers make progress under loss.
        net.advance(SimDuration::from_millis(10));
        loop {
            let n = net.stacks[0].read(cs, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        if got.len() == payload.len() {
            break;
        }
    }
    assert_eq!(got.len(), payload.len(), "transfer must complete under 10% loss");
    assert_eq!(got, payload, "bytes must arrive intact and in order");
    assert!(
        net.stacks[1].tcb(ss).unwrap().stats.rto_retransmits
            + net.stacks[1].tcb(ss).unwrap().stats.fast_retransmits
            > 0
    );
}

#[test]
fn backup_tap_loss_leaves_gap_identified_by_rcv_nxt() {
    // If the backup misses a client segment it cannot recover it from
    // the wire (the primary acked it; the client purges it). This test
    // pins down the *detection* state the side-channel recovery of the
    // sttcp crate starts from.
    let (mut net, cs, ps, bs) = shadow_rig();
    net.stacks[0].write(cs, b"AAAA").unwrap();
    net.settle(50);
    // Lose the backup's copy of the next segment only: simulate by
    // feeding the client's output to the primary but not the backup.
    net.stacks[0].write(cs, b"BBBB").unwrap();
    let frames = net.stacks[0].poll(net.now);
    for f in frames {
        net.stacks[1].handle_frame(net.now, f); // primary only
    }
    net.settle(50);
    let p_tcb = net.stacks[1].tcb(ps).unwrap();
    let b_tcb = net.stacks[2].tcb(bs).unwrap();
    assert_eq!(
        p_tcb.rcv_nxt().distance(b_tcb.rcv_nxt()),
        4,
        "backup is exactly one segment behind"
    );
    // The primary retained the un-backup-acked bytes for recovery.
    let missing = net.stacks[1]
        .tcb(ps)
        .unwrap()
        .fetch_rx(b_tcb.rcv_nxt(), 4)
        .expect("primary retention still holds the bytes");
    assert_eq!(missing, b"BBBB");
    // Injecting them (what the UDP side channel will do) heals the gap.
    let rcv = b_tcb.rcv_nxt();
    net.stacks[2].tcb_mut(bs).unwrap().inject_rx(net.now, rcv, &missing);
    let healed = net.stacks[2].tcb(bs).unwrap();
    assert_eq!(healed.rcv_nxt(), net.stacks[1].tcb(ps).unwrap().rcv_nxt());
}
