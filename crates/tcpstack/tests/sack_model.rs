//! SACK scoreboard model checking (ISSUE 9, satellite 4).
//!
//! The scoreboard's interval bookkeeping is driven against a dumb linear
//! reference model — one boolean per byte offset in a window — under
//! arbitrary interleavings of SACK-block arrivals and cumulative-ACK
//! advances, at arbitrary ISNs (including ones that wrap the sequence
//! circle mid-window). Two properties are checked after every step:
//!
//! 1. **Exact equivalence**: the scoreboard's ranges are precisely the
//!    maximal runs of SACKed bytes in the reference model, and the
//!    hole-navigation API (`is_sacked` / `skip_sacked` /
//!    `next_sacked_after`) agrees with the model byte-for-byte.
//! 2. **Never retransmit SACKed bytes**: the recovery walk the sender
//!    performs (skip past SACKed islands, send up to the next island)
//!    covers every hole and touches no byte the model says the peer
//!    already holds.

use proptest::prelude::*;
use tcpstack::{SackScoreboard, SeqNum};

/// Window the model tracks, in bytes. Small enough to check
/// byte-for-byte, large enough for many disjoint islands.
const WINDOW: u32 = 512;

/// One step of scoreboard traffic, in window-relative offsets.
#[derive(Debug, Clone)]
enum Step {
    /// A SACK option block `[lo, hi)` arrives (possibly degenerate or
    /// inverted — the receiver is untrusted).
    Block { lo: u32, hi: u32 },
    /// The cumulative ACK advances by `delta` bytes.
    Ack { delta: u32 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // Weight block arrivals 4:1 over ACK advances (the shim's
    // `prop_oneof!` is uniform, so the bias is written out by arm).
    prop_oneof![
        (0..WINDOW, 0..=WINDOW).prop_map(|(lo, hi)| Step::Block { lo, hi }),
        (0..WINDOW, 0..=WINDOW).prop_map(|(lo, hi)| Step::Block { lo, hi }),
        (0..WINDOW, 0..=WINDOW).prop_map(|(lo, hi)| Step::Block { lo, hi }),
        (0..WINDOW, 0..=WINDOW).prop_map(|(lo, hi)| Step::Block { lo, hi }),
        (0..64u32).prop_map(|delta| Step::Ack { delta }),
    ]
}

/// Linear reference: `sacked[i]` ⇔ byte `base + i` is SACKed.
struct Model {
    sacked: Vec<bool>,
    una_off: u32,
}

impl Model {
    fn new() -> Self {
        Model { sacked: vec![false; WINDOW as usize], una_off: 0 }
    }

    fn insert(&mut self, lo: u32, hi: u32) {
        for i in lo..hi.min(WINDOW) {
            self.sacked[i as usize] = true;
        }
    }

    fn ack_to(&mut self, una_off: u32) {
        self.una_off = una_off;
        for i in 0..una_off.min(WINDOW) {
            self.sacked[i as usize] = false;
        }
    }

    /// Maximal runs of SACKed bytes, as `[lo, hi)` offsets.
    fn runs(&self) -> Vec<(u32, u32)> {
        let mut runs = Vec::new();
        let mut start = None;
        for (i, &s) in self.sacked.iter().enumerate() {
            match (s, start) {
                (true, None) => start = Some(i as u32),
                (false, Some(lo)) => {
                    runs.push((lo, i as u32));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(lo) = start {
            runs.push((lo, WINDOW));
        }
        runs
    }
}

/// The scoreboard's ranges converted to window-relative offsets.
fn board_runs(board: &SackScoreboard, base: SeqNum) -> Vec<(u32, u32)> {
    board
        .ranges()
        .iter()
        .map(|&(lo, hi)| {
            let lo_off = lo.distance(base);
            let hi_off = hi.distance(base);
            assert!(
                (0..=i64::from(WINDOW)).contains(&lo_off)
                    && lo_off < hi_off
                    && hi_off <= i64::from(WINDOW),
                "scoreboard range [{lo}, {hi}) escapes the window at base {base}"
            );
            (lo_off as u32, hi_off as u32)
        })
        .collect()
}

proptest! {
    /// Property 1: scoreboard ≡ linear model after every step.
    #[test]
    fn scoreboard_matches_linear_model(
        base in any::<u32>(),
        steps in proptest::collection::vec(step_strategy(), 1..40),
    ) {
        let base = SeqNum::new(base);
        let mut board = SackScoreboard::new();
        let mut model = Model::new();
        for step in steps {
            match step {
                Step::Block { lo, hi } => {
                    board.insert(base.add(lo), base.add(hi));
                    model.insert(lo, hi);
                }
                Step::Ack { delta } => {
                    // The cumulative ACK only moves forward.
                    let una = (model.una_off + delta).min(WINDOW);
                    board.ack_to(base.add(una));
                    model.ack_to(una);
                }
            }
            prop_assert_eq!(
                board_runs(&board, base), model.runs(),
                "ranges diverge from the reference model"
            );
            prop_assert_eq!(board.is_empty(), model.runs().is_empty());
            for off in 0..WINDOW {
                let seq = base.add(off);
                prop_assert_eq!(board.is_sacked(seq), model.sacked[off as usize]);
                // skip_sacked lands on the first un-SACKed byte at or
                // after `seq` (within one island — exactly what the
                // model's next hole from `off` is).
                let expect_skip = (off..WINDOW)
                    .find(|&i| !model.sacked[i as usize])
                    .unwrap_or(WINDOW);
                let skipped = board.skip_sacked(seq);
                if model.sacked[off as usize] {
                    // Inside an island: must jump to its end (a hole).
                    prop_assert_eq!(skipped.distance(base), i64::from(expect_skip));
                } else {
                    prop_assert_eq!(skipped, seq, "must not move a byte already in a hole");
                }
                let expect_next = model
                    .runs()
                    .iter()
                    .map(|&(lo, _)| lo)
                    .find(|&lo| lo > off);
                prop_assert_eq!(
                    board.next_sacked_after(seq).map(|s| s.distance(base)),
                    expect_next.map(i64::from)
                );
            }
        }
    }

    /// Property 2: the hole-walk a recovering sender performs never
    /// retransmits a SACKed byte and never skips a hole.
    #[test]
    fn recovery_walk_retransmits_holes_only(
        base in any::<u32>(),
        blocks in proptest::collection::vec((0..WINDOW, 0..=WINDOW), 0..20),
        una_off in 0..WINDOW,
    ) {
        let base = SeqNum::new(base);
        let mut board = SackScoreboard::new();
        let mut model = Model::new();
        for (lo, hi) in blocks {
            board.insert(base.add(lo), base.add(hi));
            model.insert(lo, hi);
        }
        board.ack_to(base.add(una_off));
        model.ack_to(una_off);

        // The sender's selective-retransmit walk from snd_una to the
        // right edge: skip SACKed islands, send each hole as one span.
        let end = base.add(WINDOW);
        let mut covered = vec![false; WINDOW as usize];
        let mut seq = base.add(una_off);
        while seq.lt(end) {
            seq = board.skip_sacked(seq);
            if !seq.lt(end) {
                break;
            }
            let hole_end = board.next_sacked_after(seq).map_or(end, |s| s.min(end));
            let lo = seq.distance(base) as u32;
            let hi = hole_end.distance(base) as u32;
            for off in lo..hi {
                prop_assert!(
                    !model.sacked[off as usize],
                    "retransmitted byte {off} past una {una_off} is already SACKed"
                );
                covered[off as usize] = true;
            }
            seq = hole_end;
        }
        // Completeness: every hole at/above una was covered exactly once.
        for off in una_off..WINDOW {
            prop_assert_eq!(
                covered[off as usize], !model.sacked[off as usize],
                "hole coverage wrong at offset {}", off
            );
        }
    }
}
