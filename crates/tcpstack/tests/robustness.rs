//! Robustness: the stack must survive arbitrary garbage, hostile
//! segments, and sequence-number wraparound without panicking or
//! corrupting connections.

use bytes::Bytes;
use netsim::{SimDuration, SimTime, SplitMix64};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use tcpstack::{NetStack, StackConfig, TcpState};
use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, TcpFlags, TcpSegment};

const HOST_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn host() -> NetStack {
    let mut cfg = StackConfig::host(MacAddr::local(2), HOST_IP);
    cfg.promiscuous = true; // widen the attack surface: accept everything
    let mut stack = NetStack::new(cfg);
    stack.listen(80);
    stack
}

proptest! {
    /// Raw random bytes as frames: never panic, never emit garbage that
    /// fails to parse.
    #[test]
    fn random_frames_never_panic(frames in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200), 1..40)) {
        let mut stack = host();
        let mut now = SimTime::ZERO;
        for f in frames {
            stack.handle_frame(now, Bytes::from(f));
            now += SimDuration::from_micros(100);
            for out in stack.poll(now) {
                prop_assert!(EthernetFrame::parse(out).is_ok(), "stack emitted unparsable bytes");
            }
        }
    }

    /// Structurally valid but semantically hostile TCP segments.
    #[test]
    fn hostile_segments_never_panic(
        seqs in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u8>(), 0usize..80), 1..60),
        src_ip in any::<[u8; 4]>(),
    ) {
        let src = Ipv4Addr::from(src_ip);
        let mut stack = host();
        let mut now = SimTime::ZERO;
        let mut rng = SplitMix64::new(9);
        for (seq, ack, flags, len) in seqs {
            let mut seg = TcpSegment::bare(
                (rng.next_below(3) as u16) * 11111 + 1000,
                if rng.chance(0.8) { 80 } else { 81 },
                seq,
                ack,
                TcpFlags::from_bits(flags),
                1024,
            );
            seg.payload = Bytes::from(vec![0x5A; len]);
            let ip = Ipv4Packet::new(src, HOST_IP, IpProtocol::Tcp, seg.encode(src, HOST_IP));
            let eth = EthernetFrame::new(MacAddr::local(2), MacAddr::local(9), EtherType::Ipv4, ip.encode());
            stack.handle_frame(now, eth.encode());
            now += SimDuration::from_micros(500);
            let _ = stack.poll(now);
        }
        // Whatever happened, the stack must still answer a poll.
        let _ = stack.poll(now);
    }
}

/// A full connection whose sequence numbers wrap through 2³² mid-stream.
#[test]
fn sequence_wraparound_mid_transfer() {
    // Find ISN seeds that place both ISNs just below the wrap point, so
    // a ~300 KB transfer crosses it.
    let near_wrap = |seed: u64| {
        let isn = SplitMix64::new(seed).next_u64() as u32;
        isn > u32::MAX - 100_000
    };
    let client_seed = (0..).find(|&s| near_wrap(s)).expect("seed exists");
    let server_seed = (client_seed + 1..).find(|&s| near_wrap(s)).expect("seed exists");

    let mut c_cfg = StackConfig::host(MacAddr::local(1), Ipv4Addr::new(10, 0, 0, 1));
    c_cfg.isn_seed = client_seed;
    let mut s_cfg = StackConfig::host(MacAddr::local(2), HOST_IP);
    s_cfg.isn_seed = server_seed;
    let mut client = NetStack::new(c_cfg);
    let mut server = NetStack::new(s_cfg);
    server.listen(80);

    let mut now = SimTime::ZERO;
    let cs = client.connect(now, HOST_IP, 80).unwrap();
    // Shuttle frames until quiet.
    let pump = |client: &mut NetStack, server: &mut NetStack, now: &mut SimTime| {
        for _ in 0..10_000 {
            let fc = client.poll(*now);
            let fs = server.poll(*now);
            if fc.is_empty() && fs.is_empty() {
                break;
            }
            *now += SimDuration::from_micros(100);
            for f in fc {
                server.handle_frame(*now, f);
            }
            for f in fs {
                client.handle_frame(*now, f);
            }
        }
    };
    pump(&mut client, &mut server, &mut now);
    let ss = server.accept(80).expect("established");
    assert!(client.tcb(cs).unwrap().iss().raw() > u32::MAX - 100_000, "client ISN near wrap");
    assert!(server.tcb(ss).unwrap().iss().raw() > u32::MAX - 100_000, "server ISN near wrap");

    // Push 300 KB each way — both directions wrap through zero.
    let blob: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
    let mut c_sent = 0;
    let mut s_sent = 0;
    let mut c_got = Vec::new();
    let mut s_got = Vec::new();
    let mut buf = [0u8; 4096];
    for _ in 0..200_000 {
        c_sent += client.write(cs, &blob[c_sent..]).unwrap();
        s_sent += server.write(ss, &blob[s_sent..]).unwrap();
        now += SimDuration::from_millis(1);
        pump(&mut client, &mut server, &mut now);
        loop {
            let n = client.read(cs, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            c_got.extend_from_slice(&buf[..n]);
        }
        loop {
            let n = server.read(ss, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            s_got.extend_from_slice(&buf[..n]);
        }
        if c_got.len() == blob.len() && s_got.len() == blob.len() {
            break;
        }
    }
    assert_eq!(c_got, blob, "server→client stream must survive the wrap");
    assert_eq!(s_got, blob, "client→server stream must survive the wrap");
    // And the connection still closes cleanly after wrapping.
    client.close(now, cs);
    pump(&mut client, &mut server, &mut now);
    server.close(now, ss);
    pump(&mut client, &mut server, &mut now);
    assert_eq!(server.state(ss), Some(TcpState::Closed));
}
