//! Connection lifecycle hygiene: half-open caps, slot reaping, and
//! high-connection-count behaviour — the properties a long-running
//! server depends on.

use bytes::Bytes;
use netsim::{SimDuration, SimTime};
use std::net::Ipv4Addr;
use tcpstack::{NetStack, StackConfig, TcpState};
use wire::{
    EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, TcpFlags, TcpOption, TcpSegment,
};

const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn server() -> NetStack {
    let mut cfg = StackConfig::host(MacAddr::local(2), SERVER_IP);
    cfg.learn_from_ip = true;
    let mut s = NetStack::new(cfg);
    s.listen(80);
    s
}

fn syn_from(client_ip: Ipv4Addr, client_port: u16, iss: u32) -> Bytes {
    let mut seg = TcpSegment::bare(client_port, 80, iss, 0, TcpFlags::SYN, 17520);
    seg.options = vec![TcpOption::Mss(1460)];
    let ip =
        Ipv4Packet::new(client_ip, SERVER_IP, IpProtocol::Tcp, seg.encode(client_ip, SERVER_IP));
    EthernetFrame::new(MacAddr::local(2), MacAddr::local(1), EtherType::Ipv4, ip.encode()).encode()
}

#[test]
fn half_open_connections_eventually_give_up() {
    // A "SYN flood": 20 SYNs whose handshakes never complete. The
    // SYN/ACK retransmission cap must close every embryo.
    let mut s = server();
    let mut now = SimTime::ZERO;
    for i in 0..20u16 {
        s.handle_frame(
            now,
            syn_from(Ipv4Addr::new(10, 0, 0, 50), 30_000 + i, 7_000 + u32::from(i)),
        );
    }
    assert_eq!(s.socks().count(), 20);
    // Drive timers far past the full SYN/ACK backoff schedule.
    for _ in 0..400 {
        now += SimDuration::from_secs(1);
        let _ = s.poll(now);
    }
    let alive = s.socks().filter(|&sid| s.state(sid) != Some(TcpState::Closed)).count();
    assert_eq!(alive, 0, "every half-open embryo must have given up");
}

#[test]
fn release_frees_slots_for_reuse() {
    let mut s = server();
    let now = SimTime::ZERO;
    s.handle_frame(now, syn_from(Ipv4Addr::new(10, 0, 0, 50), 30_000, 7_000));
    let sock = s.socks().next().unwrap();
    // Abort it (forces Closed), then release.
    s.abort(now, sock);
    assert_eq!(s.state(sock), Some(TcpState::Closed));
    s.release(sock);
    assert_eq!(s.state(sock), None, "released handle is dead");
    assert_eq!(s.socks().count(), 0);
    // A new connection reuses the slot — under a fresh generation, so
    // the stale handle cannot alias it.
    s.handle_frame(now, syn_from(Ipv4Addr::new(10, 0, 0, 51), 30_001, 8_000));
    assert_eq!(s.socks().count(), 1);
    let reused = s.socks().next().unwrap();
    assert_ne!(reused, sock, "recycled slot must carry a new generation");
    assert_eq!(s.state(sock), None, "stale handle still dead after reuse");
    assert!(s.state(reused).is_some());
}

#[test]
fn released_connection_is_gone_from_demux_and_listener() {
    let mut s = server();
    let now = SimTime::ZERO;
    s.handle_frame(now, syn_from(Ipv4Addr::new(10, 0, 0, 50), 30_000, 7_000));
    let sock = s.socks().next().unwrap();
    s.abort(now, sock);
    s.release(sock);
    // The listener queue must not hand out the dead handle.
    assert!(s.accept(80).is_none());
    // A retransmitted SYN for the same quad builds a fresh connection
    // rather than resurrecting the old slot's state.
    s.handle_frame(now, syn_from(Ipv4Addr::new(10, 0, 0, 50), 30_000, 9_999));
    let fresh = s.socks().next().unwrap();
    assert_eq!(s.tcb(fresh).unwrap().irs().raw(), 9_999);
}

#[test]
fn many_sequential_connections_do_not_accumulate() {
    // Open, abort, and release 500 connections: the slot table must
    // stay flat.
    let mut s = server();
    let now = SimTime::ZERO;
    for i in 0..500u32 {
        let port = 20_000 + (i % 1000) as u16;
        let ip = Ipv4Addr::new(10, 0, (i / 250) as u8, 50);
        s.handle_frame(now, syn_from(ip, port, i * 13 + 1));
        let sock = s.socks().next().expect("conn exists");
        s.abort(now, sock);
        s.release(sock);
    }
    assert_eq!(s.socks().count(), 0);
}
