//! Counting-allocator proof of the zero-allocation data hot path.
//!
//! Two stacks exchange a bulk stream in-process, frames handed over
//! and dropped each round so the `FrameBuilder` can reclaim its burst
//! buffer in place. After warm-up (buffers at high water, congestion
//! window saturated, ARP resolved) a steady-state data segment must
//! cost ZERO heap allocations end to end: stage → build frame → parse
//! → reassemble → read. The test wraps the global allocator in a
//! counter and asserts the measurement window allocates nothing.
//!
//! This file holds exactly one test: the counter is process-global,
//! and a concurrently running neighbour test would pollute it.

use netsim::{SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use tcpstack::{NetStack, StackConfig};
use wire::MacAddr;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

/// One simulated round: both stacks poll, frames cross instantly, the
/// server keeps its send buffer topped up and the client drains its
/// receive buffer. Returns the payload bytes the client consumed.
#[allow(clippy::too_many_arguments)]
fn round(
    now: SimTime,
    server: &mut NetStack,
    client: &mut NetStack,
    server_sock: tcpstack::SockId,
    client_sock: tcpstack::SockId,
    tx: &mut Vec<bytes::Bytes>,
    chunk: &[u8],
    read_buf: &mut [u8],
) -> u64 {
    while server.write(server_sock, chunk).unwrap_or(0) == chunk.len() {}
    server.poll_into(now, tx);
    for f in tx.drain(..) {
        client.handle_frame(now, f);
    }
    let mut consumed = 0u64;
    while let Ok(n) = client.read(client_sock, read_buf) {
        if n == 0 {
            break;
        }
        consumed += n as u64;
    }
    client.poll_into(now, tx);
    for f in tx.drain(..) {
        server.handle_frame(now, f);
    }
    consumed
}

#[test]
fn steady_state_data_path_allocates_nothing() {
    let mut server = NetStack::new(StackConfig::host(MacAddr::local(2), SERVER_IP));
    let mut client = NetStack::new(StackConfig::host(MacAddr::local(1), CLIENT_IP));
    server.listen(80);
    let client_sock = client.connect(SimTime::ZERO, SERVER_IP, 80).expect("connect");

    let mut tx: Vec<bytes::Bytes> = Vec::with_capacity(64);
    let step = SimDuration::from_millis(1);
    let mut now = SimTime::ZERO;
    let chunk = [0x5Au8; 2048];
    let mut read_buf = [0u8; 4096];

    // Handshake: exchange frames until the server accepts.
    let mut server_sock = None;
    for _ in 0..50 {
        client.poll_into(now, &mut tx);
        for f in tx.drain(..) {
            server.handle_frame(now, f);
        }
        server.poll_into(now, &mut tx);
        for f in tx.drain(..) {
            client.handle_frame(now, f);
        }
        if server_sock.is_none() {
            server_sock = server.accept(80);
        }
        if server_sock.is_some() {
            break;
        }
        now += step;
    }
    let server_sock = server_sock.expect("handshake must complete");

    // Warm-up: saturate the congestion window, grow every ring to its
    // high-water mark, let the builder learn its burst size.
    for _ in 0..500 {
        round(
            now,
            &mut server,
            &mut client,
            server_sock,
            client_sock,
            &mut tx,
            &chunk,
            &mut read_buf,
        );
        now += step;
    }

    // Measurement window.
    let before = ALLOCS.load(Ordering::SeqCst);
    let mut transferred = 0u64;
    let rounds = 500u64;
    for _ in 0..rounds {
        transferred += round(
            now,
            &mut server,
            &mut client,
            server_sock,
            client_sock,
            &mut tx,
            &chunk,
            &mut read_buf,
        );
        now += step;
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - before;

    assert!(
        transferred > 1 << 20,
        "measurement window must move real data, moved {transferred} bytes"
    );
    assert_eq!(
        allocs, 0,
        "steady-state data path must not allocate: {allocs} allocations \
         while transferring {transferred} bytes over {rounds} rounds"
    );
}
