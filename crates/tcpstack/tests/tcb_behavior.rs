//! White-box behavioural tests of the TCP control block, driven with
//! hand-crafted segments and a manual clock — no stack, no simulator.

use bytes::Bytes;
use netsim::{SimDuration, SimTime};
use tcpstack::{Quad, SeqNum, Tcb, TcpConfig, TcpState};
use wire::{TcpFlags, TcpSegment};

fn quad() -> Quad {
    Quad::new(
        std::net::Ipv4Addr::new(10, 0, 0, 100),
        80,
        std::net::Ipv4Addr::new(10, 0, 0, 1),
        40000,
    )
}

fn client_syn(client_iss: u32) -> TcpSegment {
    let mut s = TcpSegment::bare(40000, 80, client_iss, 0, TcpFlags::SYN, 17520);
    s.options = vec![wire::TcpOption::Mss(1460)];
    s
}

fn seg(seq: u32, ack: u32, flags: TcpFlags, payload: &[u8]) -> TcpSegment {
    let mut s = TcpSegment::bare(40000, 80, seq, ack, flags, 17520);
    s.payload = Bytes::copy_from_slice(payload);
    s
}

/// Server-side TCB established via handshake; returns (tcb, now,
/// client_next_seq, server_iss).
fn established_server(cfg: TcpConfig) -> (Tcb, SimTime, u32, u32) {
    let now = SimTime::ZERO;
    let syn = client_syn(7000);
    let mut tcb = Tcb::accept(now, quad(), SeqNum(100_000), &syn, cfg);
    let synack = tcb.poll(now);
    assert_eq!(synack.len(), 1);
    let iss = synack[0].seq;
    tcb.on_segment(now, &seg(7001, iss.wrapping_add(1), TcpFlags::ACK, b""));
    assert_eq!(tcb.state(), TcpState::Established);
    (tcb, now, 7001, iss)
}

#[test]
fn rto_rolls_back_and_resends_whole_window_under_slow_start() {
    let (mut tcb, now, _cseq, _iss) = established_server(TcpConfig::default());
    // Queue 8 segments worth; peer window is large.
    let data = vec![0xAAu8; 8 * 1460];
    assert_eq!(tcb.write(&data), data.len());
    let first_burst = tcb.poll(now);
    // Initial cwnd = 2 MSS.
    assert_eq!(first_burst.len(), 2);
    let snd_nxt_before = tcb.snd_nxt();
    // Nothing comes back; RTO fires (1 s initial).
    let t1 = now + SimDuration::from_millis(1100);
    let rtx_burst = tcb.poll(t1);
    // Go-back-N: snd_nxt rolled to snd_una, cwnd collapsed to 1 MSS,
    // exactly one segment resent, starting at snd_una.
    assert_eq!(rtx_burst.len(), 1);
    assert_eq!(rtx_burst[0].seq, tcb.snd_una().raw());
    assert_eq!(rtx_burst[0].payload.len(), 1460);
    assert!(tcb.snd_nxt().lt(snd_nxt_before) || tcb.snd_nxt() == snd_nxt_before.sub(1460));
    assert_eq!(tcb.stats.rto_retransmits, 1);
    // The peer acks the retransmission: slow start resumes with two
    // segments (cwnd 2 MSS). The first re-covers old ground (segment 2
    // of the original burst — not new bytes); the second is the first
    // transmission of queued data beyond the old snd_max.
    let bytes_out_before = tcb.stats.bytes_out;
    let t2 = t1 + SimDuration::from_millis(10);
    tcb.on_segment(t2, &seg(7001, rtx_burst[0].seq.wrapping_add(1460), TcpFlags::ACK, b""));
    let resume = tcb.poll(t2);
    assert_eq!(resume.len(), 2, "slow start must re-open the pipe");
    assert_eq!(
        tcb.stats.bytes_out,
        bytes_out_before + 1460,
        "only the genuinely-new segment counts as new bytes"
    );
}

#[test]
fn fin_retransmits_after_rollback() {
    let (mut tcb, now, _cseq, _iss) = established_server(TcpConfig::default());
    tcb.write(b"bye");
    tcb.close(now);
    let out = tcb.poll(now);
    // 3 bytes + FIN (possibly combined or separate).
    let had_fin = out.iter().any(|s| s.flags.contains(TcpFlags::FIN));
    assert!(had_fin);
    assert_eq!(tcb.state(), TcpState::FinWait1);
    // RTO fires twice with no ack: data+FIN must be fully resent.
    let t1 = now + SimDuration::from_millis(1100);
    let rtx = tcb.poll(t1);
    assert!(!rtx.is_empty());
    let resent_fin = rtx.iter().any(|s| s.flags.contains(TcpFlags::FIN));
    assert!(resent_fin, "rollback must re-emit the FIN: {rtx:?}");
    // Ack everything: connection proceeds to FinWait2.
    let fin_seq = rtx.iter().map(|s| s.seq.wrapping_add(s.seq_len())).max().unwrap();
    tcb.on_segment(t1, &seg(7001, fin_seq, TcpFlags::ACK, b""));
    assert_eq!(tcb.state(), TcpState::FinWait2);
}

#[test]
fn zero_window_probe_elicits_update() {
    let cfg = TcpConfig { delayed_ack: SimDuration::ZERO, ..TcpConfig::default() };
    let (mut tcb, now, _cseq, iss) = established_server(cfg);
    // Peer advertises a zero window.
    tcb.on_segment(now, &seg(7001, iss.wrapping_add(1), TcpFlags::ACK, b""));
    let zero_win = {
        let mut s = TcpSegment::bare(40000, 80, 7001, iss.wrapping_add(1), TcpFlags::ACK, 0);
        s.payload = Bytes::new();
        s
    };
    tcb.on_segment(now, &zero_win);
    tcb.write(b"stuck data");
    assert!(tcb.poll(now).is_empty(), "no data may flow into a zero window");
    // The persist timer fires and sends a probe below the window.
    let t1 = now + SimDuration::from_secs(2);
    let probes = tcb.poll(t1);
    assert_eq!(probes.len(), 1);
    assert_eq!(probes[0].payload.len(), 0);
    assert_eq!(probes[0].seq, tcb.snd_una().sub(1).raw(), "keepalive-style probe below snd_una");
    assert!(tcb.stats.probes >= 1);
    // The peer answers with an opened window: data flows.
    let open = TcpSegment::bare(40000, 80, 7001, iss.wrapping_add(1), TcpFlags::ACK, 17520);
    tcb.on_segment(t1, &open);
    let data = tcb.poll(t1);
    assert_eq!(data.len(), 1);
    assert_eq!(data[0].payload.as_ref(), b"stuck data");
}

#[test]
fn shadow_resync_from_primary_synack_wins_over_client_ack() {
    let cfg = TcpConfig { shadow: true, ..TcpConfig::default() };
    let now = SimTime::ZERO;
    let syn = client_syn(7000);
    let mut tcb = Tcb::accept(now, quad(), SeqNum(555), &syn, cfg);
    let _ = tcb.poll(now); // its own (suppressed) SYN/ACK
                           // The tapped primary SYN/ACK announces the true ISN.
    tcb.shadow_resync_iss(now, SeqNum(42_000));
    assert_eq!(tcb.iss(), SeqNum(42_000));
    assert_eq!(tcb.stats.isn_resyncs, 1);
    // A *late* client ACK (handshake ACK lost; this one acks 150 bytes
    // of primary data) arrives: it must NOT shift the ISN again.
    tcb.on_segment(now, &seg(7001, 42_151, TcpFlags::ACK, b""));
    assert_eq!(tcb.state(), TcpState::Established);
    assert_eq!(tcb.iss(), SeqNum(42_000), "authoritative ISN must stick");
    assert_eq!(tcb.snd_nxt(), SeqNum(42_001));
    // The 150 acked-but-not-yet-generated bytes are remembered.
    assert_eq!(tcb.peer_ack_high_water(), SeqNum(42_151));
    // When the app produces them, they complete instantly.
    tcb.write(&[0x55u8; 150]);
    let out = tcb.poll(now);
    assert_eq!(out.len(), 1);
    assert_eq!(tcb.snd_una(), SeqNum(42_151), "auto-trim against the tapped client ack");
}

#[test]
fn shadow_fallback_resync_without_synack() {
    // If the primary SYN/ACK tap was lost, the paper's client-ACK rule
    // still applies.
    let cfg = TcpConfig { shadow: true, ..TcpConfig::default() };
    let now = SimTime::ZERO;
    let syn = client_syn(7000);
    let mut tcb = Tcb::accept(now, quad(), SeqNum(555), &syn, cfg);
    let _ = tcb.poll(now);
    tcb.on_segment(now, &seg(7001, 90_001, TcpFlags::ACK, b""));
    assert_eq!(tcb.state(), TcpState::Established);
    assert_eq!(tcb.iss(), SeqNum(90_000));
    assert_eq!(tcb.stats.isn_resyncs, 1);
}

#[test]
fn shadow_resync_is_inert_for_non_shadow_or_established() {
    // Non-shadow TCB: no-op.
    let (mut tcb, _now, _c, iss) = established_server(TcpConfig::default());
    tcb.shadow_resync_iss(_now, SeqNum(1));
    assert_eq!(tcb.iss(), SeqNum(iss));
    // Shadow TCB after establishment: no-op.
    let cfg = TcpConfig { shadow: true, ..TcpConfig::default() };
    let now = SimTime::ZERO;
    let mut shadow = Tcb::accept(now, quad(), SeqNum(555), &client_syn(7000), cfg);
    let _ = shadow.poll(now);
    shadow.shadow_resync_iss(now, SeqNum(1000));
    shadow.on_segment(now, &seg(7001, 1001, TcpFlags::ACK, b""));
    assert_eq!(shadow.state(), TcpState::Established);
    shadow.shadow_resync_iss(now, SeqNum(9999));
    assert_eq!(shadow.iss(), SeqNum(1000), "resync after establishment must be refused");
}

#[test]
fn fast_retransmit_on_three_dup_acks() {
    let cfg = TcpConfig { delayed_ack: SimDuration::ZERO, ..TcpConfig::default() };
    let (mut tcb, now, _c, iss) = established_server(cfg);
    // Grow cwnd a little: write and ack a few rounds.
    let mut clock = now;
    let mut acked = iss.wrapping_add(1);
    for _ in 0..4 {
        tcb.write(&[0u8; 2920]);
        let out = tcb.poll(clock);
        for s in &out {
            acked = acked.max(s.seq.wrapping_add(s.payload.len() as u32));
        }
        clock += SimDuration::from_millis(10);
        tcb.on_segment(clock, &seg(7001, acked, TcpFlags::ACK, b""));
    }
    // Put 5 segments in flight.
    tcb.write(&[1u8; 5 * 1460]);
    let flight = tcb.poll(clock);
    assert!(flight.len() >= 4, "need several segments in flight, got {}", flight.len());
    let first_seq = flight[0].seq;
    // Three duplicate ACKs for the first segment's start.
    for _ in 0..3 {
        tcb.on_segment(clock, &seg(7001, first_seq, TcpFlags::ACK, b""));
    }
    let rtx = tcb.poll(clock);
    assert_eq!(tcb.stats.fast_retransmits, 1);
    assert!(rtx.iter().any(|s| s.seq == first_seq), "front segment must be fast-retransmitted");
    assert_eq!(tcb.stats.rto_retransmits, 0, "no timeout involved");
}

#[test]
fn retention_survives_app_reads_until_backup_ack() {
    let mut cfg = TcpConfig::st_tcp_primary();
    cfg.delayed_ack = SimDuration::ZERO;
    let (mut tcb, now, cseq, _iss) = established_server(cfg);
    tcb.on_segment(
        now,
        &seg(cseq, tcb.snd_nxt().raw(), TcpFlags::ACK | TcpFlags::PSH, b"0123456789"),
    );
    let mut buf = [0u8; 10];
    assert_eq!(tcb.read(&mut buf), 10);
    assert_eq!(tcb.retained(), 10);
    assert_eq!(tcb.fetch_rx(SeqNum(cseq), 10).unwrap(), b"0123456789");
    tcb.set_backup_acked(SeqNum(cseq).add(10));
    assert_eq!(tcb.retained(), 0);
    assert_eq!(tcb.fetch_rx(SeqNum(cseq), 10), None);
}

#[test]
fn syn_retransmission_gives_up_eventually() {
    let now = SimTime::ZERO;
    let mut tcb = Tcb::connect(now, quad().flipped(), SeqNum(1), TcpConfig::default());
    let _ = tcb.poll(now);
    let mut clock = now;
    for _ in 0..100 {
        clock += SimDuration::from_secs(30);
        let _ = tcb.poll(clock);
        if tcb.state() == TcpState::Closed {
            break;
        }
    }
    assert_eq!(tcb.state(), TcpState::Closed, "unanswered SYN must eventually give up");
}

#[test]
fn rst_kills_the_connection_immediately() {
    let (mut tcb, now, cseq, _iss) = established_server(TcpConfig::default());
    tcb.on_segment(now, &seg(cseq, tcb.snd_nxt().raw(), TcpFlags::RST, b""));
    assert_eq!(tcb.state(), TcpState::Closed);
    assert!(tcb.poll(now).is_empty(), "a closed TCB emits nothing");
}
