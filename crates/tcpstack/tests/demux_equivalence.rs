//! Property test: the slab + hash demux must be observably equivalent
//! to a naive linear reference model under random open/close/lookup
//! churn, and recycled slots must never be reachable through stale
//! handles (the generation tag's whole job).
//!
//! The reference model is the data structure the stack used before the
//! O(1) refactor: an append-only list of `(quad, handle)` pairs scanned
//! linearly. Every observable of the real stack — which quads resolve,
//! which handles are live, how many sockets exist — is checked against
//! it after every operation batch.

use bytes::Bytes;
use netsim::rng::SplitMix64;
use netsim::SimTime;
use std::net::Ipv4Addr;
use tcpstack::{NetStack, Quad, SockId, StackConfig, TcpState};
use wire::{
    EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, TcpFlags, TcpOption, TcpSegment,
};

const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

fn server() -> NetStack {
    let mut cfg = StackConfig::host(MacAddr::local(2), SERVER_IP);
    cfg.extra_ips = vec![VIP];
    cfg.learn_from_ip = true;
    let mut s = NetStack::new(cfg);
    s.listen(80);
    s.listen(81);
    s
}

fn syn_from(client_ip: Ipv4Addr, client_port: u16, dst_port: u16, iss: u32) -> Bytes {
    let mut seg = TcpSegment::bare(client_port, dst_port, iss, 0, TcpFlags::SYN, 17520);
    seg.options = vec![TcpOption::Mss(1460)];
    let ip = Ipv4Packet::new(client_ip, VIP, IpProtocol::Tcp, seg.encode(client_ip, VIP));
    EthernetFrame::new(MacAddr::local(2), MacAddr::local(1), EtherType::Ipv4, ip.encode()).encode()
}

/// The pre-refactor shape: linear scan over every connection.
#[derive(Default)]
struct LinearModel {
    /// Live connections in creation order.
    conns: Vec<(Quad, SockId)>,
    /// Handles released earlier; must stay dead forever.
    dead: Vec<(Quad, SockId)>,
}

impl LinearModel {
    fn lookup(&self, quad: Quad) -> Option<SockId> {
        self.conns.iter().find(|(q, _)| *q == quad).map(|&(_, s)| s)
    }

    fn remove(&mut self, quad: Quad) -> Option<SockId> {
        let i = self.conns.iter().position(|(q, _)| *q == quad)?;
        let (q, s) = self.conns.remove(i);
        self.dead.push((q, s));
        Some(s)
    }
}

fn check_equivalent(stack: &NetStack, model: &LinearModel) {
    assert_eq!(stack.sock_count(), model.conns.len(), "live connection count diverged");
    for &(quad, sock) in &model.conns {
        assert_eq!(stack.sock_by_quad(quad), Some(sock), "live quad must resolve to its handle");
        assert!(stack.state(sock).is_some(), "live handle must resolve");
        assert_eq!(stack.tcb(sock).map(|t| t.quad()), Some(quad), "handle resolves to its quad");
    }
    for &(quad, sock) in &model.dead {
        assert_eq!(stack.state(sock), None, "stale handle {sock:?} must stay dead (no aliasing)");
        // The quad may have been re-opened under a NEW handle; if so it
        // must resolve to that one, never to the stale handle.
        if let Some(cur) = stack.sock_by_quad(quad) {
            assert_ne!(cur, sock, "recycled quad must carry a fresh generation");
        }
    }
    // Iteration agrees with the model's population.
    let live: Vec<SockId> = stack.socks().collect();
    assert_eq!(live.len(), model.conns.len());
    for sock in live {
        assert!(model.conns.iter().any(|&(_, s)| s == sock), "stack iterates unknown handle");
    }
}

#[test]
fn random_churn_matches_linear_reference_model() {
    let mut rng = SplitMix64::new(0xD3_0D_2024);
    let mut stack = server();
    let mut model = LinearModel::default();
    let now = SimTime::ZERO;
    let mut next_client = 0u32;

    for round in 0..2000 {
        match rng.next_below(100) {
            // 55 %: open a fresh connection on one of the two listeners.
            0..=54 => {
                let i = next_client;
                next_client += 1;
                let ip = Ipv4Addr::new(10, 1, (i / 200) as u8, (i % 200) as u8 + 1);
                let port = 20_000 + (i % 20_000) as u16;
                let dst = if rng.next_below(2) == 0 { 80 } else { 81 };
                stack.handle_frame(now, syn_from(ip, port, dst, i.wrapping_mul(2654435761)));
                let quad =
                    Quad { local_ip: VIP, local_port: dst, remote_ip: ip, remote_port: port };
                let sock = stack.sock_by_quad(quad).expect("SYN creates a connection");
                model.conns.push((quad, sock));
            }
            // 20 %: close + release a random live connection.
            55..=74 => {
                if !model.conns.is_empty() {
                    let i = rng.next_below(model.conns.len() as u64) as usize;
                    let (quad, _) = model.conns[i];
                    let sock = model.remove(quad).unwrap();
                    stack.abort(now, sock);
                    assert_eq!(stack.state(sock), Some(TcpState::Closed));
                    stack.release(sock);
                }
            }
            // 15 %: duplicate SYN for a live quad must not mint a new
            // connection (demux hit, not a listener hit).
            75..=89 => {
                if !model.conns.is_empty() {
                    let i = rng.next_below(model.conns.len() as u64) as usize;
                    let (quad, sock) = model.conns[i];
                    stack.handle_frame(
                        now,
                        syn_from(quad.remote_ip, quad.remote_port, quad.local_port, 42),
                    );
                    assert_eq!(stack.sock_by_quad(quad), Some(sock));
                    assert_eq!(stack.sock_count(), model.conns.len());
                }
            }
            // 10 %: reopen a previously-released quad — fresh handle.
            _ => {
                if !model.dead.is_empty() {
                    let i = rng.next_below(model.dead.len() as u64) as usize;
                    let (quad, _) = model.dead[i];
                    if model.lookup(quad).is_none() {
                        stack.handle_frame(
                            now,
                            syn_from(quad.remote_ip, quad.remote_port, quad.local_port, 7),
                        );
                        let sock = stack.sock_by_quad(quad).expect("reopened quad resolves");
                        model.conns.push((quad, sock));
                    }
                }
            }
        }
        // Full cross-check every few rounds (every round is O(n²)-ish
        // and slows the test pointlessly), always on the last.
        if round % 50 == 0 || round == 1999 {
            check_equivalent(&stack, &model);
        }
    }
    // Drain every accept queue: each live connection was handed out
    // exactly once across both listeners.
    let mut accepted = 0;
    while stack.accept(80).is_some() || stack.accept(81).is_some() {
        accepted += 1;
    }
    assert!(accepted <= model.conns.len() + model.dead.len());
    check_equivalent(&stack, &model);
}

#[test]
fn generation_reuse_never_aliases() {
    // Tight loop on one quad: open, release, reopen. Every released
    // handle must stay dead even as its slot is recycled many times.
    let mut stack = server();
    let now = SimTime::ZERO;
    let quad = Quad {
        local_ip: VIP,
        local_port: 80,
        remote_ip: Ipv4Addr::new(10, 1, 0, 9),
        remote_port: 30_000,
    };
    let mut stale: Vec<SockId> = Vec::new();
    for gen in 0..64 {
        stack.handle_frame(now, syn_from(quad.remote_ip, quad.remote_port, 80, 1000 + gen));
        let sock = stack.sock_by_quad(quad).expect("connection exists");
        for &old in &stale {
            assert_ne!(sock, old, "slot reuse must never resurrect a stale handle");
            assert_eq!(stack.state(old), None);
        }
        stack.abort(now, sock);
        stack.release(sock);
        stale.push(sock);
    }
    assert_eq!(stack.sock_count(), 0);
}
