//! `sttcp-lab` — run any ST-TCP experiment from the command line.
//!
//! ```text
//! Usage: sttcp-lab [OPTIONS]
//!
//!   --workload W     echo | interactive | bulk:<MB> | upload:<MB>   [echo]
//!   --requests N     exchanges for echo/interactive                 [100]
//!   --deployment D   standard | sttcp                               [sttcp]
//!   --hb MS          heartbeat / SyncTime interval in ms            [50]
//!   --topology T     hub | shared:<mbit> | mirror | multicast | gateway [hub]
//!   --crash-at S     crash the primary at S seconds
//!   --tap-loss PCT   drop PCT% of TCP frames into the backup
//!   --think MS       interactive server compute time per request    [0]
//!   --logger         insert the in-network packet logger
//!   --power-switch   attach the fencing power switch
//!   --close          client closes after the final response
//!   --seed N         simulator seed                                 [0xE4A1]
//!   --pcap FILE      write every frame to FILE (open in Wireshark)
//! ```
//!
//! Example — the paper's Table 2 Echo cell at 200 ms heartbeats:
//!
//! ```text
//! sttcp-lab --workload echo --hb 200 --crash-at 0.45
//! ```

use st_tcp::apps::Workload;
use st_tcp::netsim::pcap::SharedPcap;
use st_tcp::netsim::{DropRule, SimDuration, SimTime};
use st_tcp::sttcp::scenario::{
    addrs, build, Deployment, FaultSpec, RunLimits, ScenarioSpec, Topology,
};
use st_tcp::sttcp::{ServerNode, SttcpConfig};
use st_tcp::wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet};
use std::process::exit;

fn usage() -> ! {
    eprintln!("{}", USAGE);
    exit(2)
}

const USAGE: &str = "Usage: sttcp-lab [--workload echo|interactive|bulk:<MB>|upload:<MB>]
                 [--requests N] [--deployment standard|sttcp] [--hb MS]
                 [--topology hub|shared:<mbit>|mirror|multicast|gateway]
                 [--crash-at SECS] [--tap-loss PCT] [--think MS]
                 [--logger] [--power-switch] [--close] [--seed N] [--pcap FILE]";

struct Args {
    workload: Workload,
    standard: bool,
    hb_ms: u64,
    topology: Topology,
    crash_at: Option<f64>,
    tap_loss: f64,
    think_ms: u64,
    logger: bool,
    power_switch: bool,
    close: bool,
    seed: u64,
    pcap: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: Workload::Echo { requests: 100 },
        standard: false,
        hb_ms: 50,
        topology: Topology::Hub,
        crash_at: None,
        tap_loss: 0.0,
        think_ms: 0,
        logger: false,
        power_switch: false,
        close: false,
        seed: 0xE4A1,
        pcap: None,
    };
    let mut requests = 100usize;
    let mut workload_kind = "echo".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--workload" => workload_kind = val("--workload"),
            "--requests" => requests = val("--requests").parse().unwrap_or_else(|_| usage()),
            "--deployment" => match val("--deployment").as_str() {
                "standard" => args.standard = true,
                "sttcp" => args.standard = false,
                _ => usage(),
            },
            "--hb" => args.hb_ms = val("--hb").parse().unwrap_or_else(|_| usage()),
            "--topology" => {
                let t = val("--topology");
                args.topology = match t.as_str() {
                    "hub" => Topology::Hub,
                    "mirror" => Topology::SwitchMirror,
                    "multicast" => Topology::SwitchMulticast,
                    "gateway" => Topology::GatewaySwitch,
                    other => match other.strip_prefix("shared:") {
                        Some(mbit) => Topology::SharedMediumHub {
                            medium_bps: mbit.parse::<u64>().unwrap_or_else(|_| usage()) * 1_000_000,
                        },
                        None => usage(),
                    },
                };
            }
            "--crash-at" => {
                args.crash_at = Some(val("--crash-at").parse().unwrap_or_else(|_| usage()))
            }
            "--tap-loss" => {
                args.tap_loss = val("--tap-loss").parse::<f64>().unwrap_or_else(|_| usage()) / 100.0
            }
            "--think" => args.think_ms = val("--think").parse().unwrap_or_else(|_| usage()),
            "--logger" => args.logger = true,
            "--power-switch" => args.power_switch = true,
            "--close" => args.close = true,
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--pcap" => args.pcap = Some(val("--pcap")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args.workload = match workload_kind.as_str() {
        "echo" => Workload::Echo { requests },
        "interactive" => Workload::Interactive { requests, reply_size: 10 * 1024 },
        other => {
            let parse_mb = |s: &str| s.parse::<u64>().unwrap_or_else(|_| usage());
            if let Some(mb) = other.strip_prefix("bulk:") {
                Workload::bulk_mb(parse_mb(mb))
            } else if let Some(mb) = other.strip_prefix("upload:") {
                Workload::upload_mb(parse_mb(mb))
            } else {
                usage()
            }
        }
    };
    args
}

fn main() {
    let args = parse_args();
    let mut spec = ScenarioSpec::new(args.workload).topology(args.topology);
    spec.seed = args.seed;
    spec.close_when_done = args.close;
    spec.interactive_think = SimDuration::from_millis(args.think_ms);
    spec.with_logger = args.logger;
    spec.with_power_switch = args.power_switch;
    if !args.standard {
        let mut cfg =
            SttcpConfig::new(addrs::VIP, 80).with_hb_interval(SimDuration::from_millis(args.hb_ms));
        if args.logger {
            cfg = cfg.with_logger();
        }
        if args.power_switch {
            cfg = cfg.with_fencing(0);
        }
        spec.deployment = Deployment::StTcp(cfg);
    }
    if let Some(t) = args.crash_at {
        spec =
            spec.faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_secs_f64(t)));
    }

    let mut scenario = build(&spec);
    if args.tap_loss > 0.0 {
        match scenario.backup {
            Some(backup) => {
                scenario.sim.add_ingress_drop(
                    backup,
                    DropRule::rate(args.tap_loss, |frame: &bytes::Bytes| {
                        (|| {
                            let eth = EthernetFrame::parse(frame.clone()).ok()?;
                            if eth.ethertype != EtherType::Ipv4 {
                                return None;
                            }
                            let ip = Ipv4Packet::parse(eth.payload).ok()?;
                            Some(ip.protocol == IpProtocol::Tcp)
                        })()
                        .unwrap_or(false)
                    }),
                );
            }
            None => {
                eprintln!("--tap-loss requires an ST-TCP deployment");
                exit(2);
            }
        }
    }
    let pcap = args.pcap.as_ref().map(|_| {
        let rec = SharedPcap::new();
        let probe = rec.clone();
        scenario.sim.set_probe(move |ev| probe.record(ev.time, ev.frame));
        rec
    });

    let metrics = scenario.run(RunLimits::time(SimDuration::from_secs(600))).expect_completed();

    println!("workload complete");
    println!("  total time        : {:.6} s", metrics.total_time().unwrap().as_secs_f64());
    println!("  responses         : {}", metrics.latencies.len());
    println!("  bytes received    : {}", metrics.bytes_received);
    println!("  stream verified   : {}", metrics.verified_clean());
    if let Some(max) = metrics.max_latency() {
        println!("  max req latency   : {:.3} ms", max.as_secs_f64() * 1e3);
    }
    if let Some(backup) = scenario.backup {
        let node = scenario.sim.node_ref::<ServerNode>(backup);
        let eng = node.backup_engine().expect("backup role");
        println!("backup engine");
        println!("  acks sent         : {}", eng.stats.acks_sent);
        println!("  heartbeats seen   : {}", eng.stats.hbs_received);
        println!("  missing requests  : {}", eng.stats.missing_reqs);
        println!("  bytes recovered   : {}", eng.stats.missing_bytes_recovered);
        println!(
            "  logger queries    : {}",
            eng.stats.logger_queries + eng.stats.bootstrap_queries
        );
        match eng.takeover_at() {
            Some(t) => println!("  TOOK OVER at      : {:.3} s", t.as_secs_f64()),
            None => println!("  took over         : no"),
        }
    }
    let trace = scenario.sim.trace();
    println!("simulator");
    println!("  events processed  : {}", trace.events_processed);
    println!("  frames delivered  : {}", trace.frames_delivered);
    if let (Some(rec), Some(path)) = (pcap, args.pcap) {
        match rec.save(&path) {
            Ok(()) => println!("  pcap written      : {path} ({} frames)", rec.len()),
            Err(e) => eprintln!("  pcap write failed : {e}"),
        }
    }
    if !metrics.verified_clean() {
        exit(1);
    }
}
