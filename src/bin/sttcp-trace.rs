//! `sttcp-trace` — capture and render flight-recorder traces.
//!
//! ```text
//! Usage:
//!   sttcp-trace capture [--out FILE] [--seed N] [--crash-at SECS]
//!   sttcp-trace timeline FILE
//!   sttcp-trace seq FILE [CONN]
//!   sttcp-trace chrome FILE
//! ```
//!
//! * `capture`  runs a canned failover (Echo x100, primary crash) with
//!   the flight recorder on and writes the `sttcp-trace-v1` JSON export
//!   to stdout or `--out FILE`.
//! * `timeline` renders an export as a human-readable event timeline
//!   with the takeover phase breakdown.
//! * `seq`      renders a per-connection text sequence diagram; CONN is
//!   a connection id as printed by `timeline` (e.g.
//!   `10.0.0.1:40000<->10.0.0.100:80`), defaulting to the first seen.
//! * `chrome`   converts an export to Chrome trace_event JSON — open in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Pipelines compose: `sttcp-trace capture | sttcp-trace timeline
//! /dev/stdin`.

use st_tcp::obs::{render_chrome, render_sequence, render_timeline, TraceConn, TraceExport};
use st_tcp::sttcp::prelude::*;
use std::process::exit;

const USAGE: &str = "Usage: sttcp-trace capture [--out FILE] [--seed N] [--crash-at SECS]
       sttcp-trace timeline FILE
       sttcp-trace seq FILE [CONN]
       sttcp-trace chrome FILE";

fn usage() -> ! {
    eprintln!("{USAGE}");
    exit(2)
}

fn load(path: &str) -> TraceExport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    TraceExport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not an sttcp-trace-v1 export: {e}");
        exit(1)
    })
}

fn capture(mut rest: impl Iterator<Item = String>) {
    let mut out = None;
    let mut seed = 0xE4A1u64;
    let mut crash_s = 0.25f64;
    while let Some(flag) = rest.next() {
        let mut val = |name: &str| {
            rest.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--out" => out = Some(val("--out")),
            "--seed" => seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--crash-at" => crash_s = val("--crash-at").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let crash_at = SimTime::ZERO + SimDuration::from_secs_f64(crash_s);
    let mut spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .recording()
        .tracing()
        .faults(FaultSpec::crash_primary_at(crash_at));
    spec.seed = seed;
    let mut sc = build(&spec);
    let outcome = sc.run(RunLimits::default());
    if !outcome.completed() {
        eprintln!("warning: workload did not complete ({:?})", outcome.reason);
    }
    let export = sc.trace_export().expect("tracing was enabled");
    let json = export.to_json();
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            eprintln!(
                "wrote {} events ({} dropped) to {path}",
                export.events.len(),
                export.dropped
            );
        }
        None => println!("{json}"),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("capture") => capture(args),
        Some("timeline") => {
            let path = args.next().unwrap_or_else(|| usage());
            print!("{}", render_timeline(&load(&path)));
        }
        Some("seq") => {
            let path = args.next().unwrap_or_else(|| usage());
            let conn = args.next().map(|c| {
                TraceConn::parse(&c).unwrap_or_else(|| {
                    eprintln!("bad connection id {c:?} (expected a:p<->b:q)");
                    exit(1)
                })
            });
            print!("{}", render_sequence(&load(&path), conn));
        }
        Some("chrome") => {
            let path = args.next().unwrap_or_else(|| usage());
            println!("{}", render_chrome(&load(&path)));
        }
        _ => usage(),
    }
}
