//! # ST-TCP — Server fault-Tolerant TCP (facade crate)
//!
//! Reproduction of *"TCP Server Fault Tolerance Using Connection Migration
//! to a Backup Server"* (Marwah, Mishra, Fetzer — DSN 2003).
//!
//! This crate re-exports the whole workspace so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! * [`netsim`] — deterministic discrete-event Ethernet/LAN simulator,
//! * [`wire`] — packet formats (Ethernet, ARP, IPv4, UDP, TCP),
//! * [`tcpstack`] — sans-io userspace TCP/IP stack,
//! * [`sttcp`] — the paper's contribution: primary/backup engines, tap
//!   shadowing, the synchronization side channel, failure detection,
//!   and connection takeover,
//! * [`apps`] — the paper's three evaluation applications (Echo,
//!   Interactive, Bulk transfer) plus workload drivers.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured results.

#![forbid(unsafe_code)]

pub use apps;
pub use chaos;
pub use netsim;
pub use obs;
pub use sttcp;
pub use tcpstack;
pub use wire;
