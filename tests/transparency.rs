//! The paper's central claim, tested at the frame level: **during
//! failure-free operation a client cannot distinguish an ST-TCP server
//! from a standard TCP server.**
//!
//! We record every frame delivered to the client in both deployments
//! and compare the TCP-level sequence (flags, seq, ack, payload, even
//! timing) — not just the application byte stream.

use st_tcp::apps::Workload;
use st_tcp::netsim::{SimDuration, SimTime};
use st_tcp::sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec};
use st_tcp::sttcp::SttcpConfig;
use st_tcp::wire::{EtherType, EthernetFrame, Ipv4Packet, TcpSegment};
use std::cell::RefCell;
use std::rc::Rc;

/// A client-visible TCP event: (time ns, seq, ack, flags bits, len, window).
type FrameSig = (u64, u32, u32, u8, usize, u16);
/// ISN-relative frame content (seq, ack, flags, len, win), timing split off.
type Normalized = (Vec<(u32, u32, u8, usize, u16)>, Vec<u64>);

fn record_client_frames(spec: &ScenarioSpec) -> (Vec<FrameSig>, f64) {
    let mut scenario = build(spec);
    let client = scenario.client;
    let log: Rc<RefCell<Vec<FrameSig>>> = Rc::new(RefCell::new(Vec::new()));
    let l2 = log.clone();
    scenario.sim.set_probe(move |ev| {
        if ev.to != client {
            return;
        }
        let Ok(eth) = EthernetFrame::parse(ev.frame.clone()) else {
            return;
        };
        if eth.ethertype != EtherType::Ipv4 {
            return;
        }
        let Ok(ip) = Ipv4Packet::parse(eth.payload) else {
            return;
        };
        if ip.src != addrs::VIP {
            return;
        }
        let Ok(seg) = TcpSegment::parse(ip.payload.clone(), ip.src, ip.dst) else {
            return;
        };
        l2.borrow_mut().push((
            ev.time.as_nanos(),
            seg.seq,
            seg.ack,
            seg.flags.bits(),
            seg.payload.len(),
            seg.window,
        ));
    });
    let metrics = scenario.run(RunLimits::time(SimDuration::from_secs(120))).expect_completed();
    assert!(metrics.verified_clean());
    let total = metrics.total_time().unwrap().as_secs_f64();
    let frames = log.borrow().clone();
    (frames, total)
}

/// Sequence numbers are ISN-relative to compare across deployments
/// (different stacks draw different ISNs; §4.1 is about primary/backup
/// equality, not across experiments). Timing is kept separately: on a
/// broadcast hub the ~84-byte side-channel frames genuinely occupy the
/// shared medium, so ST-TCP frames may trail by a few serialization
/// slots (the paper's §4.3 traffic-overhead budget) without any
/// protocol-visible difference.
fn normalize(frames: &[FrameSig]) -> Normalized {
    let Some(&(_, first_seq, _, _, _, _)) = frames.first() else {
        return (Vec::new(), Vec::new());
    };
    // First frame is the SYN/ACK: seq = ISS, ack = client ISN + 1.
    let first_ack = frames[0].2;
    let content = frames
        .iter()
        .map(|&(_, seq, ack, flags, len, win)| {
            (seq.wrapping_sub(first_seq), ack.wrapping_sub(first_ack), flags, len, win)
        })
        .collect();
    let times = frames.iter().map(|&(t, ..)| t).collect();
    (content, times)
}

/// Asserts two runs are client-indistinguishable: identical frame
/// contents and per-frame timing within `jitter_ns` (side-channel
/// serialization slots on the shared hub).
fn assert_transparent(std_frames: &[FrameSig], st_frames: &[FrameSig], jitter_ns: u64) {
    let (std_content, std_times) = normalize(std_frames);
    let (st_content, st_times) = normalize(st_frames);
    assert_eq!(std_content, st_content, "client-visible frame contents must be identical");
    for (i, (a, b)) in std_times.iter().zip(&st_times).enumerate() {
        let delta = a.abs_diff(*b);
        assert!(
            delta <= jitter_ns,
            "frame {i} timing differs by {delta}ns (> {jitter_ns}ns of hub serialization jitter)"
        );
    }
}

#[test]
fn client_sees_identical_frames_echo() {
    let std_spec = ScenarioSpec::new(Workload::Echo { requests: 50 });
    let st_spec =
        ScenarioSpec::new(Workload::Echo { requests: 50 }).st_tcp(SttcpConfig::new(addrs::VIP, 80));
    let (std_frames, std_total) = record_client_frames(&std_spec);
    let (st_frames, st_total) = record_client_frames(&st_spec);
    assert!(
        (std_total - st_total).abs() < 1e-3,
        "total times must agree within 1 ms: {std_total} vs {st_total}"
    );
    assert_transparent(&std_frames, &st_frames, 100_000);
    assert!(!std_frames.is_empty());
}

#[test]
fn client_sees_identical_frames_interactive() {
    let w = Workload::Interactive { requests: 20, reply_size: 10 * 1024 };
    let (std_frames, _) = record_client_frames(&ScenarioSpec::new(w));
    let (st_frames, _) =
        record_client_frames(&ScenarioSpec::new(w).st_tcp(SttcpConfig::new(addrs::VIP, 80)));
    assert_transparent(&std_frames, &st_frames, 100_000);
}

#[test]
fn client_sees_identical_frames_bulk() {
    let w = Workload::Bulk { file_size: 512 * 1024 };
    let (std_frames, _) = record_client_frames(&ScenarioSpec::new(w));
    let (st_frames, _) =
        record_client_frames(&ScenarioSpec::new(w).st_tcp(SttcpConfig::new(addrs::VIP, 80)));
    assert_transparent(&std_frames, &st_frames, 100_000);
}

#[test]
fn heartbeat_interval_does_not_leak_to_the_client() {
    // Different HB intervals change only the side channel, never the
    // client-visible stream.
    let w = Workload::Echo { requests: 30 };
    let mut reference: Option<Vec<_>> = None;
    for hb_ms in [50u64, 200, 1000, 5000] {
        let cfg =
            SttcpConfig::new(addrs::VIP, 80).with_hb_interval(SimDuration::from_millis(hb_ms));
        let (frames, _) = record_client_frames(&ScenarioSpec::new(w).st_tcp(cfg));
        let (n, _) = normalize(&frames);
        match &reference {
            None => reference = Some(n),
            Some(r) => assert_eq!(r, &n, "hb={hb_ms}ms changed the client-visible stream"),
        }
    }
}

#[test]
fn failover_changes_only_timing_not_bytes() {
    // With a crash, the client's *byte stream* (seq-ordered payload)
    // must be identical to the failure-free stream even though frame
    // timing obviously differs.
    let w = Workload::Echo { requests: 50 };
    let cfg = SttcpConfig::new(addrs::VIP, 80);
    let (clean, _) = record_client_frames(&ScenarioSpec::new(w).st_tcp(cfg.clone()));
    let (crashed, _) = record_client_frames(
        &ScenarioSpec::new(w)
            .st_tcp(cfg)
            .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_millis(250))),
    );
    // Project to (relative seq, len) of payload-carrying frames, dedup
    // retransmissions by keeping the first occurrence of each seq.
    let stream = |frames: &[FrameSig]| -> Vec<(u32, usize)> {
        let base = frames.first().map(|f| f.1).unwrap_or(0);
        let mut seen = std::collections::BTreeMap::new();
        for &(_, seq, _, _, len, _) in frames {
            if len > 0 {
                seen.entry(seq.wrapping_sub(base)).or_insert(len);
            }
        }
        seen.into_iter().collect()
    };
    assert_eq!(stream(&clean), stream(&crashed), "payload coverage must be identical");
}
