//! What happens when the crashed primary comes back?
//!
//! The paper keeps it simple: the power switch turns the primary off and
//! nobody turns it back on mid-service. These tests document why that
//! discipline matters — a rebooted ex-primary has lost all TCP state
//! (reboot amnesia is modelled by `ServerNode`), still owns the VIP by
//! configuration, and will RST the very connections that migrated to
//! the backup.

use st_tcp::apps::Workload;
use st_tcp::netsim::{SimDuration, SimTime};
use st_tcp::sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec};
use st_tcp::sttcp::{ClientNode, ServerNode, SttcpConfig};

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

#[test]
fn reboot_resets_all_server_state() {
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80));
    let mut s = build(&spec);
    s.sim.run_for(secs(0.3));
    assert_eq!(s.sim.node_ref::<ServerNode>(s.primary).accepted.len(), 1);
    // Power-cycle the primary.
    s.sim.schedule_crash(s.primary, s.sim.now());
    s.sim.schedule_power_on(s.primary, s.sim.now() + secs(0.05));
    s.sim.run_for(secs(0.2));
    let p = s.sim.node_ref::<ServerNode>(s.primary);
    assert_eq!(p.boot_count, 2, "the node must have rebooted");
    assert_eq!(p.accepted.len(), 0, "reboot amnesia: all connections forgotten");
    assert_eq!(p.stack().socks().count(), 0);
}

#[test]
fn rebooted_ex_primary_resets_migrated_connections() {
    // Crash → takeover → the backup serves. Then someone powers the old
    // primary back on. It answers for the VIP again with no TCBs and
    // RSTs the client — the failure mode the power-switch discipline
    // (leave it off!) exists to prevent.
    let crash = SimTime::ZERO + secs(0.3);
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .faults(FaultSpec::crash_primary_at(crash));
    let mut s = build(&spec);
    // Let the takeover complete and service resume...
    s.sim.run_for(secs(0.7));
    assert!(s.backup().unwrap().has_taken_over());
    let bytes_mid = s.client().unwrap().metrics.bytes_received;
    assert!(bytes_mid > 0);
    // ...then bring the old primary back.
    s.sim.schedule_power_on(s.primary, s.sim.now());
    let deadline = SimTime::ZERO + secs(20.0);
    while s.sim.now() < deadline && !s.client().unwrap().is_done() {
        s.sim.run_for(secs(0.05));
    }
    // The amnesiac primary RSTs the client's established connection the
    // moment one of its segments reaches it.
    assert!(
        !s.client().unwrap().is_done(),
        "the returning amnesiac primary must break the service"
    );
    let c = s.sim.node_ref::<ClientNode>(s.client);
    let state = c.sock().and_then(|sk| c.stack().state(sk));
    assert_eq!(
        state,
        Some(st_tcp::tcpstack::TcpState::Closed),
        "client connection must have been reset"
    );
    assert!(
        s.sim.node_ref::<ServerNode>(s.primary).stack().stats.rsts_sent > 0,
        "the reset came from the rebooted primary"
    );
}

#[test]
fn with_fencing_discipline_the_primary_stays_down_and_service_survives() {
    // The counterpart: same crash, nobody powers the primary back on
    // (the paper's §4.4 discipline). The run completes.
    let crash = SimTime::ZERO + secs(0.3);
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80).with_fencing(0))
        .with_power_switch()
        .faults(FaultSpec::crash_primary_at(crash));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(30.0))).expect_completed();
    assert!(m.verified_clean());
    assert!(!s.sim.is_alive(s.primary), "fenced and left off");
}
