//! Backup failure, reboot, and reintegration (extension beyond the
//! paper, which stops at the primary's transition to non-fault-tolerant
//! mode).
//!
//! Model: when the backup dies, the primary releases retention for all
//! live connections — their tap history is gone for good. When a
//! (rebooted, amnesiac) backup returns, the side channel resumes and
//! *new* connections are fully protected again; the old connection is
//! served but unprotected.

use st_tcp::apps::{EchoServer, Workload, WorkloadClient};
use st_tcp::netsim::node::PortId;
use st_tcp::netsim::{Hub, LinkSpec, SimDuration, SimTime, Simulator};
use st_tcp::sttcp::node::{ClientNode, ServerNode, LAN};
use st_tcp::sttcp::SttcpConfig;
use st_tcp::tcpstack::{StackConfig, TcpConfig};
use st_tcp::wire::MacAddr;
use std::net::Ipv4Addr;

const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);
const PRIMARY_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const BACKUP_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

#[test]
fn rebooted_backup_reintegrates_and_protects_new_connections() {
    let mut sim = Simulator::with_seed(0xFACE);
    let st = SttcpConfig::new(VIP, 80);

    let mut p_cfg = StackConfig::host(MacAddr::local(2), PRIMARY_IP);
    p_cfg.extra_ips = vec![VIP];
    p_cfg.learn_from_ip = true;
    p_cfg.isn_seed = 22;
    p_cfg.tcp = TcpConfig::st_tcp_primary();
    let primary = sim.add_node(
        "primary",
        ServerNode::primary(p_cfg, st.clone(), BACKUP_IP, Box::new(|| Box::new(EchoServer::new()))),
    );

    let mut b_cfg = StackConfig::host(MacAddr::local(3), BACKUP_IP);
    b_cfg.extra_ips = vec![VIP];
    b_cfg.learn_from_ip = true;
    b_cfg.promiscuous = true;
    b_cfg.suppressed_ips = vec![VIP];
    b_cfg.isn_seed = 33;
    b_cfg.tcp = TcpConfig::st_tcp_backup();
    let backup = sim.add_node(
        "backup",
        ServerNode::backup(b_cfg, st, PRIMARY_IP, Box::new(|| Box::new(EchoServer::new()))),
    );

    let hub = sim.add_node("hub", Hub::new(4));
    sim.connect(primary, LAN, hub, PortId(0), LinkSpec::lan());
    sim.connect(backup, LAN, hub, PortId(1), LinkSpec::lan());

    // Client 1 connects immediately; its run lasts ~3 s (300 requests).
    let mut c1_cfg = StackConfig::host(MacAddr::local(101), Ipv4Addr::new(10, 0, 0, 11));
    c1_cfg.isn_seed = 1001;
    let c1 = sim.add_node(
        "client1",
        ClientNode::new(
            c1_cfg,
            (VIP, 80),
            SimDuration::from_millis(1),
            WorkloadClient::new(Workload::Echo { requests: 300 }),
        ),
    );
    sim.connect(c1, LAN, hub, PortId(2), LinkSpec::lan());

    // Client 2 connects AFTER the backup has rebooted and reintegrated.
    let mut c2_cfg = StackConfig::host(MacAddr::local(102), Ipv4Addr::new(10, 0, 0, 12));
    c2_cfg.isn_seed = 1002;
    let c2 = sim.add_node(
        "client2",
        ClientNode::new(
            c2_cfg,
            (VIP, 80),
            SimDuration::from_millis(1200),
            WorkloadClient::new(Workload::Echo { requests: 100 }),
        ),
    );
    sim.connect(c2, LAN, hub, PortId(3), LinkSpec::lan());

    // Backup dies at 0.3 s, reboots at 0.8 s.
    sim.schedule_crash(backup, SimTime::ZERO + secs(0.3));
    sim.schedule_power_on(backup, SimTime::ZERO + secs(0.8));

    // Let the death be detected and the reintegration happen.
    sim.run_until(SimTime::ZERO + secs(1.1));
    {
        let p = sim.node_ref::<ServerNode>(primary);
        let eng = p.primary_engine().unwrap();
        assert!(eng.backup_alive(), "rebooted backup must have reintegrated by 1.1s");
        assert_eq!(eng.stats.reintegrations, 1);
        let b = sim.node_ref::<ServerNode>(backup);
        assert_eq!(b.boot_count, 2);
        assert_eq!(b.accepted.len(), 0, "amnesiac backup knows no old connections");
    }

    // Run until both clients finish.
    let deadline = SimTime::ZERO + secs(30.0);
    loop {
        sim.run_for(secs(0.1));
        let done1 = sim.node_ref::<ClientNode>(c1).app::<WorkloadClient>().unwrap().is_done();
        let done2 = sim.node_ref::<ClientNode>(c2).app::<WorkloadClient>().unwrap().is_done();
        if done1 && done2 {
            break;
        }
        assert!(sim.now() < deadline, "clients must finish (done1={done1}, done2={done2})");
    }
    for c in [c1, c2] {
        let app = sim.node_ref::<ClientNode>(c).app::<WorkloadClient>().unwrap();
        assert!(app.metrics.verified_clean());
    }
    // The reintegrated backup shadows client 2's (new) connection...
    let b = sim.node_ref::<ServerNode>(backup);
    assert_eq!(b.accepted.len(), 1, "exactly the post-reboot connection is shadowed");
    // ...and acks it, so the primary retains for it again.
    let eng = b.backup_engine().unwrap();
    assert!(eng.stats.acks_sent > 0, "side channel resumed for the new connection");
    assert!(!eng.has_taken_over());
}

#[test]
fn new_connection_after_reintegration_survives_primary_crash() {
    // The payoff: a connection opened after the backup's reboot is fully
    // protected — crash the primary mid-run and it migrates cleanly.
    let mut sim = Simulator::with_seed(0xFACE);
    let st = SttcpConfig::new(VIP, 80);

    let mut p_cfg = StackConfig::host(MacAddr::local(2), PRIMARY_IP);
    p_cfg.extra_ips = vec![VIP];
    p_cfg.learn_from_ip = true;
    p_cfg.isn_seed = 22;
    p_cfg.tcp = TcpConfig::st_tcp_primary();
    let primary = sim.add_node(
        "primary",
        ServerNode::primary(p_cfg, st.clone(), BACKUP_IP, Box::new(|| Box::new(EchoServer::new()))),
    );
    let mut b_cfg = StackConfig::host(MacAddr::local(3), BACKUP_IP);
    b_cfg.extra_ips = vec![VIP];
    b_cfg.learn_from_ip = true;
    b_cfg.promiscuous = true;
    b_cfg.suppressed_ips = vec![VIP];
    b_cfg.isn_seed = 33;
    b_cfg.tcp = TcpConfig::st_tcp_backup();
    let backup = sim.add_node(
        "backup",
        ServerNode::backup(b_cfg, st, PRIMARY_IP, Box::new(|| Box::new(EchoServer::new()))),
    );
    let hub = sim.add_node("hub", Hub::new(3));
    sim.connect(primary, LAN, hub, PortId(0), LinkSpec::lan());
    sim.connect(backup, LAN, hub, PortId(1), LinkSpec::lan());

    // Backup power-cycles early; the client connects after reintegration.
    sim.schedule_crash(backup, SimTime::ZERO + secs(0.1));
    sim.schedule_power_on(backup, SimTime::ZERO + secs(0.5));
    let mut c_cfg = StackConfig::host(MacAddr::local(101), Ipv4Addr::new(10, 0, 0, 11));
    c_cfg.isn_seed = 1001;
    let client = sim.add_node(
        "client",
        ClientNode::new(
            c_cfg,
            (VIP, 80),
            SimDuration::from_millis(900),
            WorkloadClient::new(Workload::Echo { requests: 100 }),
        ),
    );
    sim.connect(client, LAN, hub, PortId(2), LinkSpec::lan());
    // Crash the primary mid-run of the new connection.
    sim.schedule_crash(primary, SimTime::ZERO + secs(1.4));

    let deadline = SimTime::ZERO + secs(30.0);
    loop {
        sim.run_for(secs(0.1));
        if sim.node_ref::<ClientNode>(client).app::<WorkloadClient>().unwrap().is_done() {
            break;
        }
        assert!(sim.now() < deadline, "run must complete after failover");
    }
    let app = sim.node_ref::<ClientNode>(client).app::<WorkloadClient>().unwrap();
    assert!(app.metrics.verified_clean());
    assert_eq!(app.metrics.latencies.len(), 100);
    let b = sim.node_ref::<ServerNode>(backup);
    assert!(b.backup_engine().unwrap().has_taken_over(), "the reintegrated backup took over");
}
