//! Performance failures and fencing (paper §3.2/§4.4).
//!
//! "The failure detection mechanism will eventually suspect a crashed
//! computer. However, it might wrongly suspect non-crashed computers.
//! We convert wrong suspicions into correct suspicions by switching off
//! the power of a suspected computer."
//!
//! A *paused* primary (GC stall, SMI, overload) is exactly the wrong-
//! suspicion case: the backup's timeout fires, it takes over — and then
//! the primary wakes up still believing it owns the service IP. With
//! the power switch, the backup's fencing command lands while the
//! primary is stalled (power is physical; it does not queue behind the
//! stalled CPU), so the primary never returns: at most one node ever
//! speaks for the VIP.

use st_tcp::apps::{Workload, WorkloadClient};
use st_tcp::netsim::{SimDuration, SimTime};
use st_tcp::sttcp::scenario::{addrs, build, RunLimits, ScenarioSpec};
use st_tcp::sttcp::{ClientNode, ServerNode, SttcpConfig};
use st_tcp::wire::{EtherType, EthernetFrame, Ipv4Packet};
use std::cell::RefCell;
use std::rc::Rc;

/// Runs Echo×100 with the primary paused [0.3 s, 0.8 s) — long enough
/// for the 3×50 ms detection to fire, short enough that the primary
/// resumes while the run is still going. Returns (completed, clean,
/// #senders-for-VIP-after-takeover, primary alive at end).
fn run_paused_primary(with_fencing: bool) -> (bool, bool, usize, bool) {
    let mut cfg = SttcpConfig::new(addrs::VIP, 80);
    if with_fencing {
        cfg = cfg.with_fencing(0);
    }
    let mut spec = ScenarioSpec::new(Workload::Echo { requests: 100 }).st_tcp(cfg);
    spec.with_power_switch = with_fencing;
    let mut scenario = build(&spec);
    let primary = scenario.primary;
    scenario.sim.schedule_pause(
        primary,
        SimTime::ZERO + SimDuration::from_millis(300),
        SimDuration::from_millis(500),
    );

    // Track which *server* transmits VIP-sourced frames after the
    // takeover (the hub's re-broadcasts are not origination).
    let backup_id = scenario.backup.unwrap();
    let primary_id = scenario.primary;
    let senders: Rc<RefCell<std::collections::BTreeSet<usize>>> =
        Rc::new(RefCell::new(Default::default()));
    let s2 = senders.clone();
    let takeover_seen = Rc::new(RefCell::new(false));
    let t2 = takeover_seen.clone();
    scenario.sim.set_probe(move |ev| {
        if ev.from != backup_id && ev.from != primary_id {
            return;
        }
        let Ok(eth) = EthernetFrame::parse(ev.frame.clone()) else { return };
        if eth.ethertype != EtherType::Ipv4 {
            return;
        }
        let Ok(ip) = Ipv4Packet::parse(eth.payload) else { return };
        if ip.src != addrs::VIP {
            return;
        }
        if ev.from == backup_id {
            *t2.borrow_mut() = true;
        }
        if *t2.borrow() {
            s2.borrow_mut().insert(ev.from.0);
        }
    });

    let deadline = SimTime::ZERO + SimDuration::from_secs(30);
    while scenario.sim.now() < deadline && !scenario.client().unwrap().is_done() {
        scenario.sim.run_for(SimDuration::from_millis(50));
    }
    let done = scenario.client().unwrap().is_done();
    let clean = scenario.client().unwrap().metrics.verified_clean();
    let sender_count = senders.borrow().len();
    let primary_alive = scenario.sim.is_alive(primary);
    (done, clean, sender_count, primary_alive)
}

#[test]
fn fencing_prevents_split_brain_on_performance_failure() {
    let (done, clean, senders, primary_alive) = run_paused_primary(true);
    assert!(done, "service must survive the stall");
    assert!(clean);
    assert_eq!(senders, 1, "with fencing, only the backup ever speaks for the VIP after takeover");
    assert!(!primary_alive, "the fencing command must have cut the paused primary's power");
}

#[test]
fn without_fencing_the_stalled_primary_returns() {
    let (done, clean, senders, primary_alive) = run_paused_primary(false);
    // Determinism means both nodes transmit the *same* bytes, so the
    // client stream happens to stay clean here — but two nodes speaking
    // for one IP is the split-brain hazard the paper's fencing exists
    // to rule out (non-deterministic real servers would diverge).
    assert!(primary_alive, "nobody cut the power");
    assert!(
        senders >= 2,
        "without fencing the resumed primary transmits as the VIP again (split brain), saw {senders}"
    );
    // The run itself completes because the apps are deterministic.
    assert!(done && clean);
}

#[test]
fn pause_shorter_than_detection_threshold_is_harmless() {
    // A stall of 2 heartbeat intervals (< 3) must not trigger takeover.
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80));
    let mut scenario = build(&spec);
    let primary = scenario.primary;
    scenario.sim.schedule_pause(
        primary,
        SimTime::ZERO + SimDuration::from_millis(300),
        SimDuration::from_millis(100), // 2 x 50ms HB
    );
    let m = scenario.run(RunLimits::time(SimDuration::from_secs(30))).expect_completed();
    assert!(m.verified_clean());
    assert!(
        !scenario.backup().unwrap().has_taken_over(),
        "a sub-threshold stall must not be suspected"
    );
}

#[test]
fn client_keeps_talking_to_whichever_server_answers() {
    // Sanity: the client never learns there are two servers; its
    // connection state stays Established throughout the stall+takeover.
    let mut cfg = SttcpConfig::new(addrs::VIP, 80);
    cfg = cfg.with_fencing(0);
    let mut spec = ScenarioSpec::new(Workload::Echo { requests: 100 }).st_tcp(cfg);
    spec.with_power_switch = true;
    let mut scenario = build(&spec);
    let primary = scenario.primary;
    scenario.sim.schedule_pause(
        primary,
        SimTime::ZERO + SimDuration::from_millis(300),
        SimDuration::from_secs(1),
    );
    let deadline = SimTime::ZERO + SimDuration::from_secs(30);
    while scenario.sim.now() < deadline && !scenario.client().unwrap().is_done() {
        scenario.sim.run_for(SimDuration::from_millis(50));
        let c = scenario.sim.node_ref::<ClientNode>(scenario.client);
        if let Some(sock) = c.sock() {
            let state = c.stack().state(sock).unwrap();
            assert!(
                state.is_synchronized(),
                "client connection must never reset during failover, got {state:?}"
            );
        }
    }
    assert!(scenario.client().unwrap().is_done());
    // The backup is serving; its engine recorded the takeover.
    let b = scenario.sim.node_ref::<ServerNode>(scenario.backup.unwrap());
    assert!(b.backup_engine().unwrap().has_taken_over());
    let _ = scenario.sim.node_ref::<ClientNode>(scenario.client).app::<WorkloadClient>();
}
