//! Two independent ST-TCP service pairs sharing one broadcast LAN: both
//! backups run promiscuous taps, so every frame reaches every NIC — the
//! VIP-based demux and the per-pair side channels must keep the services
//! perfectly isolated, including when only ONE primary crashes.

use st_tcp::apps::{EchoServer, InteractiveServer, Workload, WorkloadClient};
use st_tcp::netsim::node::PortId;
use st_tcp::netsim::{Hub, LinkSpec, SimDuration, SimTime, Simulator};
use st_tcp::sttcp::node::{ClientNode, ServerNode, LAN};
use st_tcp::sttcp::SttcpConfig;
use st_tcp::tcpstack::{StackConfig, TcpConfig};
use st_tcp::wire::MacAddr;
use std::net::Ipv4Addr;

const VIP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);
const VIP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 200);

struct Pair {
    primary: st_tcp::netsim::NodeId,
    backup: st_tcp::netsim::NodeId,
}

#[allow(clippy::too_many_arguments)]
fn add_pair(
    sim: &mut Simulator,
    hub: st_tcp::netsim::NodeId,
    ports: (usize, usize),
    vip: Ipv4Addr,
    primary_ip: Ipv4Addr,
    backup_ip: Ipv4Addr,
    side_port: u16,
    mac_base: u32,
    echo: bool,
) -> Pair {
    let mut st = SttcpConfig::new(vip, 80);
    st.side_channel_port = side_port;

    let factory = move || -> Box<dyn st_tcp::apps::Application> {
        if echo {
            Box::new(EchoServer::new())
        } else {
            Box::new(InteractiveServer::with_sizes(st_tcp::apps::REQUEST_SIZE, 4096))
        }
    };

    let mut p_cfg = StackConfig::host(MacAddr::local(mac_base), primary_ip);
    p_cfg.extra_ips = vec![vip];
    p_cfg.learn_from_ip = true;
    p_cfg.isn_seed = u64::from(mac_base) * 7 + 1;
    p_cfg.tcp = TcpConfig::st_tcp_primary();
    let primary = sim.add_node(
        format!("primary-{vip}"),
        ServerNode::primary(p_cfg, st.clone(), backup_ip, Box::new(factory)),
    );

    let mut b_cfg = StackConfig::host(MacAddr::local(mac_base + 1), backup_ip);
    b_cfg.extra_ips = vec![vip];
    b_cfg.learn_from_ip = true;
    b_cfg.promiscuous = true; // sees the OTHER service's frames too
    b_cfg.suppressed_ips = vec![vip];
    b_cfg.isn_seed = u64::from(mac_base) * 7 + 2;
    b_cfg.tcp = TcpConfig::st_tcp_backup();
    let backup = sim.add_node(
        format!("backup-{vip}"),
        ServerNode::backup(b_cfg, st, primary_ip, Box::new(factory)),
    );

    sim.connect(primary, LAN, hub, PortId(ports.0), LinkSpec::lan());
    sim.connect(backup, LAN, hub, PortId(ports.1), LinkSpec::lan());
    Pair { primary, backup }
}

#[test]
fn two_pairs_coexist_and_one_failover_does_not_disturb_the_other() {
    let mut sim = Simulator::with_seed(0x2AC3);
    let hub = sim.add_node("hub", Hub::new(6));
    let pair_a = add_pair(
        &mut sim,
        hub,
        (0, 1),
        VIP_A,
        Ipv4Addr::new(10, 0, 0, 2),
        Ipv4Addr::new(10, 0, 0, 3),
        7077,
        10,
        true,
    );
    let pair_b = add_pair(
        &mut sim,
        hub,
        (2, 3),
        VIP_B,
        Ipv4Addr::new(10, 0, 0, 4),
        Ipv4Addr::new(10, 0, 0, 5),
        7078,
        20,
        false,
    );

    let mut ca_cfg = StackConfig::host(MacAddr::local(101), Ipv4Addr::new(10, 0, 0, 11));
    ca_cfg.isn_seed = 501;
    let client_a = sim.add_node(
        "client-a",
        ClientNode::new(
            ca_cfg,
            (VIP_A, 80),
            SimDuration::from_millis(1),
            WorkloadClient::new(Workload::Echo { requests: 150 }),
        ),
    );
    sim.connect(client_a, LAN, hub, PortId(4), LinkSpec::lan());

    let mut cb_cfg = StackConfig::host(MacAddr::local(102), Ipv4Addr::new(10, 0, 0, 12));
    cb_cfg.isn_seed = 502;
    let client_b = sim.add_node(
        "client-b",
        ClientNode::new(
            cb_cfg,
            (VIP_B, 80),
            SimDuration::from_millis(3),
            WorkloadClient::new(Workload::Interactive { requests: 150, reply_size: 4096 }),
        ),
    );
    sim.connect(client_b, LAN, hub, PortId(5), LinkSpec::lan());

    // Crash ONLY service A's primary, mid-run.
    sim.schedule_crash(pair_a.primary, SimTime::ZERO + SimDuration::from_millis(400));

    let deadline = SimTime::ZERO + SimDuration::from_secs(30);
    loop {
        sim.run_for(SimDuration::from_millis(50));
        let da = sim.node_ref::<ClientNode>(client_a).app::<WorkloadClient>().unwrap().is_done();
        let db = sim.node_ref::<ClientNode>(client_b).app::<WorkloadClient>().unwrap().is_done();
        if da && db {
            break;
        }
        assert!(sim.now() < deadline, "both services must complete (a={da}, b={db})");
    }

    for (client, expected_bytes) in [(client_a, 150 * 150u64), (client_b, 150 * 4096u64)] {
        let app = sim.node_ref::<ClientNode>(client).app::<WorkloadClient>().unwrap();
        assert!(app.metrics.verified_clean());
        assert_eq!(app.metrics.bytes_received, expected_bytes);
    }

    // Service A failed over; service B never did.
    assert!(sim.node_ref::<ServerNode>(pair_a.backup).backup_engine().unwrap().has_taken_over());
    assert!(!sim.node_ref::<ServerNode>(pair_b.backup).backup_engine().unwrap().has_taken_over());
    // Each backup shadowed exactly its own service.
    assert_eq!(sim.node_ref::<ServerNode>(pair_a.backup).accepted.len(), 1);
    assert_eq!(sim.node_ref::<ServerNode>(pair_b.backup).accepted.len(), 1);
    // And service B's pair stayed in fault-tolerant mode throughout.
    assert!(sim.node_ref::<ServerNode>(pair_b.primary).primary_engine().unwrap().backup_alive());
}
