//! Property-based system tests: the failover invariants must hold for
//! *any* crash instant and any simulator seed, not just the curated
//! times the examples use.
//!
//! Invariant under test (DESIGN.md §5.5): the application-level byte
//! stream received by the client with a mid-run crash is exactly the
//! no-failure stream — every byte delivered exactly once, in order,
//! with correct content — and the run always completes.

use proptest::prelude::*;
use st_tcp::apps::Workload;
use st_tcp::netsim::{DropRule, SimDuration, SimTime};
use st_tcp::sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec};
use st_tcp::sttcp::SttcpConfig;
use st_tcp::wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, TcpSegment};

/// The omission class of paper §4.2: payload-carrying client→service
/// segments lost on the backup's ingress (IP-buffer overflow). SYN
/// loss on the tap is explicitly out of scope — the backup shadows a
/// connection from its SYN (§4.1) — and side-channel/logger frames are
/// part of the recovery machinery itself.
fn tapped_client_data(frame: &bytes::Bytes) -> bool {
    (|| {
        let eth = EthernetFrame::parse(frame.clone()).ok()?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4Packet::parse(eth.payload).ok()?;
        if ip.dst != addrs::VIP || ip.protocol != IpProtocol::Tcp {
            return None;
        }
        let seg = TcpSegment::parse(ip.payload.clone(), ip.src, ip.dst).ok()?;
        Some(!seg.payload.is_empty())
    })()
    .unwrap_or(false)
}

fn run_with_crash(workload: Workload, crash_ms: u64, seed: u64, tap_loss: f64) -> (u64, usize) {
    // Tap-loss runs get the in-network logger: a loss immediately before
    // the crash is the §3.2 double failure, unrecoverable without it.
    let mut cfg = SttcpConfig::new(addrs::VIP, 80);
    if tap_loss > 0.0 {
        cfg = cfg.with_logger();
    }
    let mut spec = ScenarioSpec::new(workload)
        .st_tcp(cfg)
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_millis(crash_ms)));
    spec.seed = seed;
    spec.with_logger = tap_loss > 0.0;
    let mut scenario = build(&spec);
    if tap_loss > 0.0 {
        let backup = scenario.backup.unwrap();
        scenario.sim.add_ingress_drop(backup, DropRule::rate(tap_loss, tapped_client_data));
    }
    let m = scenario.run(RunLimits::time(SimDuration::from_secs(300))).expect_completed();
    assert!(
        m.verified_clean(),
        "crash at {crash_ms}ms seed {seed} loss {tap_loss}: stream corrupted at {:?}",
        m.first_error_pos
    );
    (m.bytes_received, m.latencies.len())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Echo: any crash instant inside the run window.
    #[test]
    fn echo_failover_any_crash_time(crash_ms in 20u64..950, seed in 1u64..1000) {
        let (bytes, responses) = run_with_crash(Workload::Echo { requests: 100 }, crash_ms, seed, 0.0);
        prop_assert_eq!(bytes, 100 * 150);
        prop_assert_eq!(responses, 100);
    }

    /// Bulk: any crash instant inside the (shorter) 1 MB transfer.
    #[test]
    fn bulk_failover_any_crash_time(crash_ms in 20u64..700, seed in 1u64..1000) {
        let (bytes, _) = run_with_crash(Workload::bulk_mb(1), crash_ms, seed, 0.0);
        prop_assert_eq!(bytes, 1 << 20);
    }

    /// Tap loss *and* a crash together: the side channel must have kept
    /// the backup consistent enough to take over cleanly.
    #[test]
    fn echo_failover_with_tap_loss(crash_ms in 100u64..900, seed in 1u64..1000, loss in 0.01f64..0.25) {
        let (bytes, responses) = run_with_crash(Workload::Echo { requests: 100 }, crash_ms, seed, loss);
        prop_assert_eq!(bytes, 100 * 150);
        prop_assert_eq!(responses, 100);
    }

    /// Interactive with a crash during the burst phase.
    #[test]
    fn interactive_failover_any_crash_time(crash_ms in 20u64..1000, seed in 1u64..1000) {
        let w = Workload::Interactive { requests: 100, reply_size: 10 * 1024 };
        let (bytes, responses) = run_with_crash(w, crash_ms, seed, 0.0);
        prop_assert_eq!(bytes, 100 * 10 * 1024);
        prop_assert_eq!(responses, 100);
    }
}

/// A crash *during the handshake or before any request* must still
/// leave the system able to serve (the backup shadows from SYN).
#[test]
fn crash_during_connection_setup() {
    for crash_ms in [2u64, 4, 6, 8, 11, 15] {
        let (bytes, _) = run_with_crash(Workload::Echo { requests: 20 }, crash_ms, 7, 0.0);
        assert_eq!(bytes, 20 * 150, "crash at {crash_ms}ms broke connection setup");
    }
}

/// Crash after the last response but before the run is observed done:
/// nothing left to recover, nothing must break.
#[test]
fn crash_after_completion_window() {
    let (bytes, _) = run_with_crash(Workload::Echo { requests: 20 }, 5_000, 7, 0.0);
    assert_eq!(bytes, 20 * 150);
}
