//! Multiple concurrent clients on one ST-TCP server pair: every
//! connection is shadowed independently and every connection migrates
//! on a crash. (A beyond-the-paper extension: the prototype evaluation
//! used a single client, but the protocol is per-connection.)

use st_tcp::apps::{EchoServer, Workload, WorkloadClient};
use st_tcp::netsim::node::PortId;
use st_tcp::netsim::{Hub, LinkSpec, SimDuration, SimTime, Simulator};
use st_tcp::sttcp::fleet::{self, FleetSpec};
use st_tcp::sttcp::node::{ClientNode, ServerNode, LAN};
use st_tcp::sttcp::SttcpConfig;
use st_tcp::tcpstack::{StackConfig, TcpConfig};
use st_tcp::wire::MacAddr;
use std::net::Ipv4Addr;

const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);
const PRIMARY_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const BACKUP_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

struct Rig {
    sim: Simulator,
    clients: Vec<st_tcp::netsim::NodeId>,
    primary: st_tcp::netsim::NodeId,
    backup: st_tcp::netsim::NodeId,
}

fn build_rig(n_clients: usize) -> Rig {
    let mut sim = Simulator::with_seed(0xBEEF);
    let st = SttcpConfig::new(VIP, 80);

    let mut p_cfg = StackConfig::host(MacAddr::local(2), PRIMARY_IP);
    p_cfg.extra_ips = vec![VIP];
    p_cfg.learn_from_ip = true;
    p_cfg.isn_seed = 22;
    p_cfg.tcp = TcpConfig::st_tcp_primary();
    let primary = sim.add_node(
        "primary",
        ServerNode::primary(p_cfg, st.clone(), BACKUP_IP, Box::new(|| Box::new(EchoServer::new()))),
    );

    let mut b_cfg = StackConfig::host(MacAddr::local(3), BACKUP_IP);
    b_cfg.extra_ips = vec![VIP];
    b_cfg.learn_from_ip = true;
    b_cfg.promiscuous = true;
    b_cfg.suppressed_ips = vec![VIP];
    b_cfg.isn_seed = 33;
    b_cfg.tcp = TcpConfig::st_tcp_backup();
    let backup = sim.add_node(
        "backup",
        ServerNode::backup(b_cfg, st, PRIMARY_IP, Box::new(|| Box::new(EchoServer::new()))),
    );

    let hub = sim.add_node("hub", Hub::new(2 + n_clients));
    sim.connect(primary, LAN, hub, PortId(0), LinkSpec::lan());
    sim.connect(backup, LAN, hub, PortId(1), LinkSpec::lan());

    let mut clients = Vec::new();
    for i in 0..n_clients {
        let ip = Ipv4Addr::new(10, 0, 0, 10 + i as u8);
        let mut c_cfg = StackConfig::host(MacAddr::local(100 + i as u32), ip);
        c_cfg.isn_seed = 1000 + i as u64;
        let app = WorkloadClient::new(Workload::Echo { requests: 50 });
        // Stagger connection setup so handshakes interleave.
        let node =
            ClientNode::new(c_cfg, (VIP, 80), SimDuration::from_millis(1 + 7 * i as u64), app);
        let id = sim.add_node(format!("client{i}"), node);
        sim.connect(id, LAN, hub, PortId(2 + i), LinkSpec::lan());
        clients.push(id);
    }
    Rig { sim, clients, primary, backup }
}

fn run_until_all_done(rig: &mut Rig, limit: SimDuration) -> bool {
    let deadline = rig.sim.now() + limit;
    while rig.sim.now() < deadline {
        rig.sim.run_for(SimDuration::from_millis(50));
        let all_done = rig.clients.iter().all(|&c| {
            rig.sim
                .node_ref::<ClientNode>(c)
                .app::<WorkloadClient>()
                .map(|a| a.is_done())
                .unwrap_or(false)
        });
        if all_done {
            return true;
        }
    }
    false
}

#[test]
fn three_clients_failure_free() {
    let mut rig = build_rig(3);
    let ok = run_until_all_done(&mut rig, SimDuration::from_secs(30));
    assert!(ok, "all three clients must finish");
    for &c in &rig.clients {
        let app = rig.sim.node_ref::<ClientNode>(c).app::<WorkloadClient>().unwrap();
        assert!(app.metrics.verified_clean());
        assert_eq!(app.metrics.latencies.len(), 50);
    }
    // The backup shadowed all three connections.
    let b = rig.sim.node_ref::<ServerNode>(rig.backup);
    assert_eq!(b.accepted.len(), 3, "backup must shadow every connection");
    let p = rig.sim.node_ref::<ServerNode>(rig.primary);
    assert_eq!(p.accepted.len(), 3);
}

#[test]
fn three_clients_all_migrate_on_crash() {
    let mut rig = build_rig(3);
    rig.sim.schedule_crash(rig.primary, SimTime::ZERO + SimDuration::from_millis(200));
    let ok = run_until_all_done(&mut rig, SimDuration::from_secs(60));
    assert!(ok, "all clients must finish despite the crash");
    for &c in &rig.clients {
        let app = rig.sim.node_ref::<ClientNode>(c).app::<WorkloadClient>().unwrap();
        assert!(app.metrics.verified_clean(), "client stream corrupted by failover");
        assert_eq!(app.metrics.latencies.len(), 50);
    }
    let b = rig.sim.node_ref::<ServerNode>(rig.backup);
    assert!(b.backup_engine().unwrap().has_taken_over());
}

// --- hundreds of connections, via the fleet generator ----------------

#[test]
fn three_hundred_clients_failure_free() {
    let spec = FleetSpec::new(300).connect_spread(SimDuration::from_millis(100));
    let mut fleet = fleet::build(&spec);
    assert!(fleet.run_until_done(SimDuration::from_secs(60)), "all 300 clients must finish");
    assert!(fleet.verified_clean(), "every byte stream verified");
    // Every connection was shadowed: the backup adopted as many
    // connections as the primary accepted.
    let p = fleet.sim.node_ref::<ServerNode>(fleet.primary);
    let b = fleet.sim.node_ref::<ServerNode>(fleet.backup);
    assert_eq!(p.accepted.len(), 300, "primary accepts each client once");
    assert_eq!(b.accepted.len(), 300, "backup must shadow every connection");
}

#[test]
fn three_hundred_clients_migrate_on_crash() {
    // All clients connect within 100 ms; the crash lands at 160 ms,
    // while late connectors are still mid-workload. Every affected
    // connection must migrate and finish byte-clean.
    let spec = FleetSpec::new(300)
        .connect_spread(SimDuration::from_millis(100))
        .crash_primary_at(SimTime::ZERO + SimDuration::from_millis(160));
    let mut fleet = fleet::build(&spec);
    assert!(fleet.run_until_done(SimDuration::from_secs(120)), "fleet must finish despite crash");
    assert!(fleet.verified_clean(), "a client stream was corrupted by failover");
    let b = fleet.sim.node_ref::<ServerNode>(fleet.backup);
    assert!(b.backup_engine().unwrap().has_taken_over());
    assert_eq!(b.accepted.len(), 300, "backup shadowed the full fleet");
}
