//! Double-failure masking with the in-network packet logger (§3.2),
//! on the cluster (N-backup) API.
//!
//! A tap omission makes the rank-1 backup miss one client request; the
//! side-channel recovery replies are lost too; then the primary
//! crashes. The client will never retransmit the request (the primary
//! ACKed it), so without help the backup can never serve it. The
//! packet logger — an inline device that keeps recent frames in
//! memory — replays the missing segment at takeover, and the cluster
//! engine gates its promotion on that catch-up reaching lag zero.
//!
//! Run with: `cargo run --release --example double_failure_logger`

use st_tcp::netsim::DropRule;
use st_tcp::sttcp::prelude::*;
use st_tcp::sttcp::{build_cluster, ClusterFleetSpec};
use st_tcp::wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram};

fn client_request_frame(frame: &bytes::Bytes) -> bool {
    (|| {
        let eth = EthernetFrame::parse(frame.clone()).ok()?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4Packet::parse(eth.payload).ok()?;
        if ip.dst != addrs::VIP || ip.protocol != IpProtocol::Tcp {
            return None;
        }
        let seg = TcpSegment::parse(ip.payload.clone(), ip.src, ip.dst).ok()?;
        Some(!seg.payload.is_empty())
    })()
    .unwrap_or(false)
}

fn missing_data_reply(frame: &bytes::Bytes) -> bool {
    (|| {
        let eth = EthernetFrame::parse(frame.clone()).ok()?;
        let ip = Ipv4Packet::parse(eth.payload).ok()?;
        if ip.protocol != IpProtocol::Udp {
            return None;
        }
        let udp = UdpDatagram::parse(ip.payload.clone(), ip.src, ip.dst).ok()?;
        Some(udp.dst_port == 7077 && matches!(udp.payload.first(), Some(4) | Some(5)))
    })()
    .unwrap_or(false)
}

fn run_once(with_logger: bool) {
    let mut spec = ClusterFleetSpec::new(1, 1)
        .workload(Workload::Echo { requests: 100 })
        .crash(0, SimTime::ZERO + SimDuration::from_millis(600));
    spec.connect_spread = SimDuration::from_millis(0);
    if with_logger {
        spec = spec.with_logger();
    }
    let mut fleet = build_cluster(&spec);
    let backup = fleet.servers[1];
    // The double failure: request #41 never reaches the backup's tap...
    fleet.sim.add_ingress_drop(backup, DropRule::window(40, 1, client_request_frame));
    // ...and the primary's side-channel recovery replies are lost too.
    fleet.sim.add_ingress_drop(backup, DropRule::all(missing_data_reply));

    let deadline = SimTime::ZERO + SimDuration::from_secs(30);
    while fleet.sim.now() < deadline && !fleet.client_app(0).is_done() {
        fleet.sim.run_for(SimDuration::from_millis(50));
    }
    let done = fleet.client_app(0).is_done();
    let m = &fleet.client_app(0).metrics;
    println!(
        "logger={:<5}  completed={:<5}  clean={:<5}  responses={:>3}/100  logger_replay_queries={}",
        with_logger,
        done,
        m.verified_clean(),
        m.latencies.len(),
        fleet.engine(1).stats.logger_queries,
    );
    if with_logger {
        assert!(done, "logger must mask the double failure");
        assert!(fleet.engine(1).has_taken_over(), "rank 1 serves the tail of the workload");
    } else {
        assert!(!done, "without the logger the service stalls");
    }
}

fn main() {
    println!("Omission + crash double failure (paper §3.2), cluster engine:\n");
    run_once(false);
    run_once(true);
    println!("\nWithout the logger the backup is stuck one request behind forever;");
    println!("with it, the replayed segment heals the shadow and service continues.");
}
