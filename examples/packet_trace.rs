//! Frame-level trace of an ST-TCP failover, tcpdump-style.
//!
//! Prints every frame crossing the LAN around the handshake and around
//! the crash/takeover window, annotated with its origin. Watch for:
//!
//! * the backup producing **no frames at all** before the takeover
//!   (everything it generates is suppressed) except UDP side-channel
//!   datagrams to the primary;
//! * the primary's SYN/ACK that the backup taps for its ISN;
//! * after the crash: silence, heartbeats going unanswered, and then
//!   the backup answering the client's retransmission as if nothing
//!   happened.
//!
//! The raw frames are followed by the flight recorder's *event*
//! timeline of the same run — the protocol-level story (state
//! transitions, suspicion, promotion) that the frames only imply.
//!
//! Run with: `cargo run --release --example packet_trace`

use st_tcp::obs::render_timeline;
use st_tcp::sttcp::prelude::*;
use st_tcp::wire::summarize;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let crash_at = SimTime::ZERO + SimDuration::from_millis(250);
    let spec = ScenarioSpec::new(Workload::Echo { requests: 40 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .faults(FaultSpec::crash_primary_at(crash_at))
        .recording()
        .tracing();
    let mut scenario = build(&spec);

    // Collect (time, origin, summary) for two windows of interest.
    let names = ["client", "primary", "backup", "hub/other"];
    let of = |id: st_tcp::netsim::NodeId, scenario_ids: &[(st_tcp::netsim::NodeId, usize)]| {
        scenario_ids.iter().find(|(n, _)| *n == id).map(|(_, i)| *i).unwrap_or(3)
    };
    let ids = vec![(scenario.client, 0usize), (scenario.primary, 1), (scenario.backup.unwrap(), 2)];
    let log: Rc<RefCell<Vec<(f64, usize, String)>>> = Rc::new(RefCell::new(Vec::new()));
    let l2 = log.clone();
    scenario.sim.set_probe(move |ev| {
        let t = ev.time.as_secs_f64();
        let interesting = t < 0.035 || (0.24..0.48).contains(&t);
        if interesting {
            l2.borrow_mut().push((t, of(ev.from, &ids), summarize(ev.frame)));
        }
    });

    let metrics = scenario.run(RunLimits::time(SimDuration::from_secs(30))).expect_completed();
    assert!(metrics.verified_clean());

    println!("=== connection setup (the backup taps everything, says nothing) ===");
    let mut shown_break = false;
    for (t, origin, line) in log.borrow().iter() {
        if *t > 0.2 && !shown_break {
            println!("\n=== crash at 0.250s; detection; takeover; recovery ===");
            shown_break = true;
        }
        println!("{:>9.6}s  {:<8}  {}", t, names[*origin], line);
    }
    let takeover = scenario.backup().unwrap().takeover_at().unwrap();
    println!(
        "\ntakeover completed at {:.3}s; run finished clean at {:.3}s",
        takeover.as_secs_f64(),
        metrics.finished.unwrap().as_secs_f64()
    );

    println!("\n=== the same run as protocol events (flight recorder) ===");
    let export = scenario.trace_export().expect("tracing was enabled");
    print!("{}", render_timeline(&export));
}
