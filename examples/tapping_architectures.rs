//! The four tapping architectures of paper §3.1, side by side.
//!
//! ST-TCP's backup must see every service packet. On a broadcast hub
//! that is free; on switched Ethernet it takes either a managed
//! switch's port mirroring, or the unicast-IP→multicast-MAC mapping
//! with static ARP entries (optionally behind a gateway). This example
//! runs the same Interactive workload + failover through all four and
//! prints what the tap cost in backup processing.
//!
//! Run with: `cargo run --release --example tapping_architectures`

use st_tcp::sttcp::prelude::*;
use st_tcp::sttcp::ServerNode;

fn main() {
    println!("Interactive x50 with a mid-run crash, per tapping architecture");
    println!(
        "{:<18} {:>9} {:>10} {:>12} {:>12} {:>8}",
        "topology", "total(s)", "clean", "tap frames", "filtered", "takeover"
    );
    for (name, topology) in [
        ("hub", Topology::Hub),
        ("switch+mirror", Topology::SwitchMirror),
        ("switch+multicast", Topology::SwitchMulticast),
        ("gateway+switch", Topology::GatewaySwitch),
    ] {
        let spec = ScenarioSpec::new(Workload::Interactive { requests: 50, reply_size: 10 * 1024 })
            .topology(topology)
            .st_tcp(SttcpConfig::new(addrs::VIP, 80))
            .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_millis(300)));
        let mut scenario = build(&spec);
        let metrics = scenario.run(RunLimits::time(SimDuration::from_secs(120))).expect_completed();
        let backup_id = scenario.backup.unwrap();
        let backup = scenario.sim.node_ref::<ServerNode>(backup_id);
        let stats = backup.stack().stats;
        let takeover = scenario
            .backup()
            .unwrap()
            .takeover_at()
            .map(|t| format!("{:.3}s", t.as_secs_f64()))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<18} {:>9.3} {:>10} {:>12} {:>12} {:>8}",
            name,
            metrics.total_time().unwrap().as_secs_f64(),
            metrics.verified_clean(),
            stats.frames_accepted,
            stats.frames_filtered,
            takeover,
        );
        assert!(metrics.verified_clean());
    }
    println!("\nAll four architectures deliver the same service with the same failover");
    println!("semantics; they differ only in how frames reach the backup's NIC.");
}
