//! Watching the primary's *second receive buffer* breathe (paper §4.2).
//!
//! During a client→server upload, every byte the primary's application
//! reads is retained until the backup acknowledges it over the side
//! channel. This example samples the retention occupancy and the
//! advertised window through an upload, for a healthy backup and for an
//! ack-starved one (SyncTime stretched to 1 s) — the latter shows the
//! §4.2 overflow behaviour: retained bytes spill past the second buffer
//! and the advertised window collapses until the next backup ack.
//!
//! Run with: `cargo run --release --example upload_retention`

use st_tcp::sttcp::prelude::*;
use st_tcp::sttcp::ServerNode;

fn run(label: &str, cfg: SttcpConfig) {
    let spec = ScenarioSpec::new(Workload::upload_mb(1)).st_tcp(cfg);
    let mut s = build(&spec);
    println!("\n--- {label} ---");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12}",
        "t(ms)", "retained", "window", "rcv_nxt-", "client bytes"
    );
    let mut done_at = None;
    for step in 1..=80 {
        s.sim.run_until(SimTime::ZERO + SimDuration::from_millis(25 * step));
        let p = s.sim.node_ref::<ServerNode>(s.primary);
        if p.accepted.is_empty() {
            continue;
        }
        let tcb = p.stack().tcb(p.accepted[0]).unwrap();
        let up = s
            .sim
            .node_ref::<ServerNode>(s.primary)
            .app::<st_tcp::apps::UploadServer>(p.accepted[0])
            .map(|a| a.received())
            .unwrap_or(0);
        if step % 4 == 0 || tcb.window() == 0 {
            println!(
                "{:>8} {:>10} {:>10} {:>10} {:>12}",
                25 * step,
                tcb.retained(),
                tcb.window(),
                tcb.rcv_nxt().distance(tcb.irs()),
                up
            );
        }
        if s.client().unwrap().is_done() && done_at.is_none() {
            done_at = Some(s.sim.now().as_secs_f64());
            break;
        }
    }
    match done_at {
        Some(t) => println!("upload complete at {t:.3}s"),
        None => println!("(still running after the sampling window)"),
    }
}

fn main() {
    // Healthy: acks every 50 ms / every X=¾-buffer bytes.
    run("healthy backup (50 ms SyncTime)", SttcpConfig::new(addrs::VIP, 80));

    // Starved: SyncTime (and thus the heartbeat) stretched to 1 s, the
    // X-byte rule disabled — retention must spill and throttle.
    let mut starved = SttcpConfig::new(addrs::VIP, 80).with_hb_interval(SimDuration::from_secs(1));
    starved.ack_threshold = Some(usize::MAX);
    run("ack-starved backup (1 s SyncTime, X disabled)", starved);
}
