//! Bulk transfer (the paper's "ftp-like" workload) with a crash in the
//! middle of a 5 MB download — and a per-interval throughput timeline
//! showing the dip and seamless resumption from the backup.
//!
//! Run with: `cargo run --release --example bulk_failover`

use st_tcp::sttcp::prelude::*;

fn main() {
    let crash_at = SimTime::ZERO + SimDuration::from_millis(1500);
    let cfg = SttcpConfig::new(addrs::VIP, 80);
    let hb = cfg.hb_interval;
    let missed = u64::from(cfg.missed_hb_threshold);
    let spec = ScenarioSpec::new(Workload::bulk_mb(5))
        .st_tcp(cfg)
        .faults(FaultSpec::crash_primary_at(crash_at))
        .recording();
    let mut scenario = build(&spec);

    println!("Bulk 5 MB over ST-TCP, primary crash at t=1.5s (50 ms heartbeats)");
    println!("t(s)   cumulative(MB)   interval throughput(MB/s)");
    let mut last_bytes = 0u64;
    let tick = SimDuration::from_millis(250);
    for step in 1.. {
        scenario.sim.run_for(tick);
        let m = &scenario.client().unwrap().metrics;
        let bytes = m.bytes_received;
        let rate = (bytes - last_bytes) as f64 / tick.as_secs_f64() / 1e6;
        let marker = if rate < 0.1 { "   <-- outage" } else { "" };
        println!(
            "{:5.2}   {:10.2}   {:10.2}{marker}",
            step as f64 * 0.25,
            bytes as f64 / 1e6,
            rate
        );
        last_bytes = bytes;
        if scenario.client().unwrap().is_done() {
            break;
        }
        assert!(step < 400, "transfer did not finish");
    }

    let m = scenario.client().unwrap().metrics.clone();
    let engine = scenario.backup().unwrap();
    println!(
        "\ntransfer complete: {} bytes, verified clean: {}",
        m.bytes_received,
        m.verified_clean()
    );
    println!(
        "takeover at {:.3}s ({:.0} ms after the crash)",
        engine.takeover_at().unwrap().as_secs_f64(),
        (engine.takeover_at().unwrap().as_secs_f64() - crash_at.as_secs_f64()) * 1e3
    );

    let breakdown = scenario.takeover_breakdown().expect("recorded takeover");
    println!("\n{}", breakdown.render());

    // Detection is paced by heartbeats: the backup suspects the primary
    // after `missed_hb_threshold` silent intervals, checked at sync
    // ticks — so the recorded detection latency must land just past the
    // threshold and within a couple of extra intervals of slack.
    let detection_ms = breakdown.detection_ns() as f64 / 1e6;
    let hb_ms = hb.as_millis() as f64;
    assert!(
        detection_ms > hb_ms * missed as f64 && detection_ms <= hb_ms * (missed + 2) as f64,
        "detection latency {detection_ms:.1} ms inconsistent with {hb_ms:.0} ms heartbeats \
         and threshold {missed}"
    );

    assert!(m.verified_clean());
    assert_eq!(m.bytes_received, 5 << 20);
}
