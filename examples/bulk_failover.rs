//! Bulk transfer (the paper's "ftp-like" workload) with a crash in the
//! middle of a 5 MB download — and a per-interval throughput timeline
//! showing the dip and seamless resumption from the backup.
//!
//! Run with: `cargo run --release --example bulk_failover`

use st_tcp::apps::Workload;
use st_tcp::netsim::{SimDuration, SimTime};
use st_tcp::sttcp::scenario::{addrs, build, ScenarioSpec};
use st_tcp::sttcp::SttcpConfig;

fn main() {
    let crash_at = SimTime::ZERO + SimDuration::from_millis(1500);
    let spec = ScenarioSpec::new(Workload::bulk_mb(5))
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .crash_at(crash_at);
    let mut scenario = build(&spec);

    println!("Bulk 5 MB over ST-TCP, primary crash at t=1.5s (50 ms heartbeats)");
    println!("t(s)   cumulative(MB)   interval throughput(MB/s)");
    let mut last_bytes = 0u64;
    let tick = SimDuration::from_millis(250);
    for step in 1.. {
        scenario.sim.run_for(tick);
        let m = &scenario.client_app().metrics;
        let bytes = m.bytes_received;
        let rate = (bytes - last_bytes) as f64 / tick.as_secs_f64() / 1e6;
        let marker = if rate < 0.1 { "   <-- outage" } else { "" };
        println!(
            "{:5.2}   {:10.2}   {:10.2}{marker}",
            step as f64 * 0.25,
            bytes as f64 / 1e6,
            rate
        );
        last_bytes = bytes;
        if scenario.client_app().is_done() {
            break;
        }
        assert!(step < 400, "transfer did not finish");
    }

    let m = scenario.client_app().metrics.clone();
    let engine = scenario.backup_engine().unwrap();
    println!(
        "\ntransfer complete: {} bytes, verified clean: {}",
        m.bytes_received,
        m.verified_clean()
    );
    println!(
        "takeover at {:.3}s ({:.0} ms after the crash)",
        engine.takeover_at().unwrap().as_secs_f64(),
        (engine.takeover_at().unwrap().as_secs_f64() - crash_at.as_secs_f64()) * 1e3
    );
    assert!(m.verified_clean());
    assert_eq!(m.bytes_received, 5 << 20);
}
