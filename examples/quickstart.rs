//! Quickstart: an ST-TCP deployment surviving a primary crash.
//!
//! Builds the paper's testbed (client + primary + backup on a broadcast
//! hub), runs the Echo workload, kills the primary halfway through, and
//! shows that the client — an unmodified TCP client — never notices.
//!
//! Run with: `cargo run --release --example quickstart`

use st_tcp::sttcp::prelude::*;

fn main() {
    // 100 echo exchanges; 50 ms heartbeats; crash at t = 0.45 s.
    let crash_at = SimTime::ZERO + SimDuration::from_millis(450);
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .faults(FaultSpec::crash_primary_at(crash_at));

    let mut scenario = build(&spec);
    let metrics = scenario.run(RunLimits::time(SimDuration::from_secs(60))).expect_completed();

    let engine = scenario.backup().expect("ST-TCP deployment");
    println!("ST-TCP quickstart — Echo x100 with a mid-run primary crash");
    println!("-----------------------------------------------------------");
    println!("primary crashed at        : {:.3} s", crash_at.as_secs_f64());
    println!(
        "backup took over at       : {:.3} s (detection: {:.0} ms)",
        engine.takeover_at().unwrap().as_secs_f64(),
        (engine.takeover_at().unwrap().as_secs_f64() - crash_at.as_secs_f64()) * 1e3,
    );
    println!("run completed at          : {:.3} s", metrics.finished.unwrap().as_secs_f64());
    println!("responses received        : {}", metrics.latencies.len());
    println!("every byte verified       : {}", metrics.verified_clean());
    println!(
        "worst request latency     : {:.0} ms (the one that straddled the crash)",
        metrics.max_latency().unwrap().as_secs_f64() * 1e3
    );
    println!(
        "median-ish request latency: {:.1} ms (all others: one LAN round trip)",
        metrics.mean_latency().unwrap().as_secs_f64() * 1e3
    );
    assert!(metrics.verified_clean());
}
