//! Planned migration: drain a *healthy* primary and hand the VIP to
//! its rank-1 backup with no crash, no detection window, and no
//! client-visible corruption.
//!
//! The primary announces `Drain` on its side channel; the successor
//! replies `DrainReady` once its shadow lag is zero; the primary then
//! fences itself and sends `Handover`, and the successor unsuppresses
//! the VIP immediately — the client-visible pause is bounded by the
//! in-flight round trip, not by the heartbeat failure detector.
//!
//! Run with: `cargo run --release --example planned_migration`

use st_tcp::obs::TakeoverBreakdown;
use st_tcp::sttcp::cluster::DrainPhase;
use st_tcp::sttcp::prelude::*;
use st_tcp::sttcp::{build_cluster, ClusterFleetSpec, ClusterRole};

fn main() {
    let migrate_at = SimTime::ZERO + SimDuration::from_millis(100);
    let spec = ClusterFleetSpec::new(12, 2).migrate_at(migrate_at, 1).recording();
    let hb = spec.st_tcp.hb_interval;
    let mut fleet = build_cluster(&spec);

    println!("12 clients, primary + 2 backups; drain-and-handover to rank 1 at t=100 ms\n");
    assert!(fleet.run_until_done(SimDuration::from_secs(30)), "fleet must finish");
    assert!(fleet.verified_clean(), "zero client-visible stream corruption");
    let (got, want) = fleet.progress();
    assert_eq!(got, want, "every expected response byte arrived");

    // The old primary retired through the full drain handshake; the
    // successor reigns under the planned epoch.
    assert_eq!(fleet.engine(0).drain_phase(), DrainPhase::HandedOver);
    assert_eq!(fleet.engine(0).role(), ClusterRole::Retired);
    assert_eq!(fleet.engine(0).stats.migrations, 1);
    assert!(fleet.engine(1).has_taken_over(), "rank 1 owns the VIP");
    assert_eq!(fleet.engine(1).topology().epoch(), 1);
    assert_eq!(fleet.engine(2).role(), ClusterRole::Backup, "rank 2 keeps shadowing");

    println!(
        "handover complete: {} clients, {}/{} bytes verified clean",
        fleet.clients.len(),
        got,
        want
    );
    println!(
        "old primary: {:?}/{:?}; successor unsuppressed at {:.3} s\n",
        fleet.engine(0).role(),
        fleet.engine(0).drain_phase(),
        fleet.engine(1).takeover_at().unwrap().as_secs_f64(),
    );

    // The breakdown reads the same marks as the crash case, but the
    // "suspicion" instant is the Handover receipt — so the detection
    // phase collapses to zero and the whole pause is the promotion +
    // first-byte tail.
    let snap = fleet.obs.as_ref().expect("recording fleet").snapshot();
    let breakdown = TakeoverBreakdown::from_snapshot(&snap).expect("handover recorded");
    println!("{}", breakdown.render());

    let first_byte_ns = breakdown.first_byte_latency_ns().expect("post-handover data flowed");
    assert!(
        first_byte_ns < hb.as_nanos(),
        "planned migration must restart service within one heartbeat interval \
         ({:.3} ms >= {:.0} ms)",
        first_byte_ns as f64 / 1e6,
        hb.as_millis()
    );
    println!(
        "first byte after handover: {:.3} ms < one {:.0} ms heartbeat interval — \
         no detection window was paid",
        first_byte_ns as f64 / 1e6,
        hb.as_millis()
    );
}
